"""Block-separable decomposition: unit tests plus hypothesis cross-checks.

The solver-level half exercises ``split_blocks``/``decompose``/
``recombine`` against a brute-force oracle on random block-diagonal BIPs;
the engine-level half checks the per-component cache semantics of
``SolveSession`` (see docs/engine.md).
"""

from __future__ import annotations

from itertools import product as iter_product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import LinearConstraint
from repro.core.database import LICMModel
from repro.core.linexpr import LinearExpr
from repro.engine.session import SolveSession
from repro.errors import InfeasibleError
from repro.solver.decompose import (
    closed_form,
    decompose,
    recombine,
    solve_decomposed,
    split_blocks,
)
from repro.solver.model import BIPConstraint, BIPProblem
from repro.solver.result import SolverOptions
from tests.helpers import brute_force_objective_range

BB = SolverOptions(backend="bb")


def _brute_force(problem: BIPProblem, sense: str):
    best = None
    for bits in iter_product((0, 1), repeat=problem.num_vars):
        if problem.is_feasible(list(bits)):
            value = problem.objective_value(list(bits))
            if best is None or (value > best if sense == "max" else value < best):
                best = value
    return best


# -- split_blocks ----------------------------------------------------------


def test_split_blocks_components_and_free_block():
    blocks = split_blocks([(0, 1), (1, 2), (4, 5)], variables=range(7))
    assert [b.variables for b in blocks] == [(0, 1, 2), (4, 5), (3, 6)]
    assert [b.constraint_ids for b in blocks] == [(0, 1), (2,), ()]
    assert [b.is_free for b in blocks] == [False, False, True]


def test_split_blocks_empty_scope_raises():
    with pytest.raises(ValueError):
        split_blocks([(0,), ()], variables=range(2))


def test_split_blocks_generic_keys():
    # The engine calls this with sparse model variable indices (any
    # hashable key); ordering is by smallest member.
    blocks = split_blocks([("b", "c"), ("a",)], variables=["z"])
    assert [b.variables for b in blocks] == [("a",), ("b", "c"), ("z",)]


# -- decompose -------------------------------------------------------------


def _two_block_problem():
    return BIPProblem(
        num_vars=5,
        constraints=[
            BIPConstraint(((1, 0), (1, 1)), ">=", 1),
            BIPConstraint(((1, 2), (1, 3)), "<=", 1),
        ],
        objective={0: 2, 1: -1, 2: 3, 3: 1, 4: -4},
        objective_constant=7,
    )


def test_decompose_two_blocks_plus_free():
    subs = decompose(_two_block_problem())
    assert [sub.parent_vars for sub in subs] == [(0, 1), (2, 3), (4,)]
    assert [sub.is_free for sub in subs] == [False, False, True]
    # The parent constant is not distributed; recombine adds it once.
    assert all(sub.problem.objective_constant == 0 for sub in subs)


def test_decompose_coupled_is_single_component():
    problem = BIPProblem(
        num_vars=4,
        constraints=[BIPConstraint(((1, 0), (1, 1), (1, 2), (1, 3)), "<=", 2)],
        objective={0: 1, 1: 2, 2: 3, 3: 4},
    )
    subs = decompose(problem)
    assert len(subs) == 1
    assert subs[0].problem is problem


def test_decompose_empty_scope_falls_back_monolithic():
    problem = BIPProblem(
        num_vars=2,
        constraints=[BIPConstraint((), "<=", 1), BIPConstraint(((1, 0),), "<=", 1)],
        objective={0: 1, 1: 1},
    )
    assert len(decompose(problem)) == 1


def test_solve_decomposed_matches_monolithic_and_adds_constant_once():
    problem = _two_block_problem()
    for sense in ("min", "max"):
        solution = solve_decomposed(problem, sense, BB)
        assert solution.status == "optimal"
        assert solution.objective == _brute_force(problem, sense)
        assert problem.is_feasible(solution.x)
        assert problem.objective_value(solution.x) == solution.objective


def test_infeasible_component_propagates():
    problem = BIPProblem(
        num_vars=3,
        constraints=[
            BIPConstraint(((1, 0),), ">=", 2),  # infeasible over {0,1}
            BIPConstraint(((1, 1), (1, 2)), ">=", 1),
        ],
        objective={0: 1, 1: 1, 2: 1},
    )
    assert solve_decomposed(problem, "max", BB).status == "infeasible"


def test_closed_form_free_block():
    problem = BIPProblem(num_vars=3, constraints=[], objective={0: 3, 1: -2}, names=[])
    high = closed_form(problem, "max")
    low = closed_form(problem, "min")
    assert (high.objective, high.x) == (3, [1, 0, 0])
    assert (low.objective, low.x) == (-2, [0, 1, 0])
    assert high.backend == "closed-form" and high.nodes == 0
    constrained = BIPProblem(
        num_vars=1, constraints=[BIPConstraint(((1, 0),), "<=", 1)], objective={0: 1}
    )
    assert closed_form(constrained, "max") is None


def test_recombine_limit_status_and_bound_sum():
    problem = _two_block_problem()
    subs = decompose(problem)
    from repro.solver.result import Solution

    solutions = [
        Solution(status="optimal", objective=1, x=[1, 0], bound=1.0),
        Solution(status="limit", objective=3, x=[1, 0], bound=4.0),
        solve_decomposed(subs[2].problem, "max", BB),
    ]
    combined = recombine(problem, subs, solutions, "max")
    assert combined.status == "limit"  # any truncated component => limit
    assert combined.objective == 1 + 3 + solutions[2].objective + 7
    assert combined.bound == 1.0 + 4.0 + solutions[2].bound + 7


# -- hypothesis: random block-diagonal BIPs vs brute force -----------------

nonzero = st.integers(-3, 3).filter(lambda c: c != 0)


@st.composite
def block_diagonal_problems(draw):
    """A BIP built from 1–4 independent blocks (plus possible free vars)."""
    constraints = []
    objective = {}
    offset = 0
    for _ in range(draw(st.integers(1, 4))):
        num_vars = draw(st.integers(1, 3))
        members = list(range(offset, offset + num_vars))
        for _ in range(draw(st.integers(0, 2))):
            scope = draw(
                st.lists(
                    st.sampled_from(members), min_size=1, max_size=num_vars, unique=True
                )
            )
            terms = tuple((draw(nonzero), idx) for idx in scope)
            op = draw(st.sampled_from(("<=", ">=", "==")))
            constraints.append(BIPConstraint(terms, op, draw(st.integers(-3, 4))))
        for idx in members:
            coef = draw(st.integers(-4, 4))
            if coef:
                objective[idx] = coef
        offset += num_vars
    return BIPProblem(
        num_vars=offset,
        constraints=constraints,
        objective=objective,
        objective_constant=draw(st.integers(-5, 5)),
    )


@settings(max_examples=60, deadline=None)
@given(problem=block_diagonal_problems())
def test_decomposed_equals_brute_force(problem):
    subs = decompose(problem)
    # The sub-problems partition the variables and the constraints.
    seen = sorted(idx for sub in subs for idx in sub.parent_vars)
    assert seen == list(range(problem.num_vars))
    assert sum(len(sub.constraint_ids) for sub in subs) == problem.num_constraints
    for sense in ("min", "max"):
        oracle = _brute_force(problem, sense)
        solution = solve_decomposed(problem, sense, BB)
        if oracle is None:
            assert solution.status == "infeasible"
        else:
            assert solution.status == "optimal"
            assert solution.objective == oracle
            assert problem.is_feasible(solution.x)
            assert problem.objective_value(solution.x) == oracle


@settings(max_examples=30, deadline=None)
@given(problem=block_diagonal_problems(), data=st.data())
def test_coupling_constraint_collapses_to_one_component(problem, data):
    if problem.num_vars < 2:
        return
    rhs = data.draw(st.integers(0, problem.num_vars))
    coupled = BIPProblem(
        num_vars=problem.num_vars,
        constraints=problem.constraints
        + [BIPConstraint(tuple((1, i) for i in range(problem.num_vars)), "<=", rhs)],
        objective=problem.objective,
        objective_constant=problem.objective_constant,
    )
    assert len(decompose(coupled)) == 1


# -- engine: per-component caching in SolveSession -------------------------


def _three_group_model():
    """Three independent ≥1 groups — the anonymization-group shape."""
    model = LICMModel()
    groups = [model.new_vars(2) for _ in range(3)]
    for pair in groups:
        model.add((pair[0] + pair[1]) >= 1)
    flat = [var.index for pair in groups for var in pair]
    objective = LinearExpr({idx: i + 1 for i, idx in enumerate(flat)}, 5)
    return model, flat, objective


def test_session_decomposes_and_matches_oracle():
    model, flat, objective = _three_group_model()
    session = SolveSession(model)
    answer = session.bounds(objective)
    assert answer.stats["components"] == 3
    assert answer.exact
    assert (answer.lower, answer.upper) == brute_force_objective_range(model, objective)
    # Witnesses cover every variable and attain the reported bounds.
    assert objective.value(answer.lower_witness) == answer.lower
    assert objective.value(answer.upper_witness) == answer.upper


def test_session_warm_requery_hits_every_component():
    model, flat, objective = _three_group_model()
    session = SolveSession(model)
    session.bounds(objective)
    warm = session.bounds(objective)
    assert warm.stats["cache_hits"] == 2  # normalized: both directions cached
    assert warm.stats["component_cache_hits"] == 2 * warm.stats["components"]


def test_session_perturbation_resolves_only_touched_component():
    model, flat, objective = _three_group_model()
    session = SolveSession(model)
    cold = session.bounds(objective)
    # A trivially-true cardinality constraint on one group changes only
    # that component's fingerprint: 2 of 6 component entries miss.
    perturbed = session.bounds(
        objective, extra_constraints=[LinearConstraint([(1, flat[0])], "<=", 1)]
    )
    assert (perturbed.lower, perturbed.upper) == (cold.lower, cold.upper)
    assert perturbed.stats["components"] == 3
    assert perturbed.stats["component_cache_hits"] == 2 * 3 - 2
    assert perturbed.stats["cache_hits"] == 0  # not *all* components hit


def test_session_identical_blocks_share_cache_within_one_solve():
    # Three structurally identical groups with identical coefficients
    # canonicalize to one fingerprint: the cold solve itself hits for the
    # 2nd and 3rd copies, in both directions.
    model = LICMModel()
    groups = [model.new_vars(2) for _ in range(3)]
    for pair in groups:
        model.add((pair[0] + pair[1]) >= 1)
    objective = LinearExpr(
        {var.index: 1 for pair in groups for var in pair}, 0
    )
    session = SolveSession(model)
    cold = session.bounds(objective)
    assert cold.stats["components"] == 3
    assert cold.stats["component_cache_hits"] == 4
    assert (cold.lower, cold.upper) == brute_force_objective_range(model, objective)


def test_session_infeasible_component_raises():
    model = LICMModel()
    a, b, c = model.new_vars(3)
    model.add((a + b) >= 3)  # infeasible over binaries
    model.add((c + 0) >= 0)
    objective = LinearExpr({a.index: 1, b.index: 1, c.index: 1}, 0)
    session = SolveSession(model)
    with pytest.raises(InfeasibleError):
        session.bounds(objective)


def test_session_toggle_off_is_monolithic():
    model, flat, objective = _three_group_model()
    on = SolveSession(model).bounds(objective)
    off = SolveSession(
        model, options=SolverOptions(enable_decomposition=False)
    ).bounds(objective)
    assert off.stats["components"] == 1
    assert "component_cache_hits" not in off.stats
    assert (off.lower, off.upper) == (on.lower, on.upper)


def test_session_parallel_component_dispatch():
    model, flat, objective = _three_group_model()
    with SolveSession(model, max_workers=2) as session:
        answer = session.bounds(objective)
        assert answer.stats["components"] == 3
        assert (answer.lower, answer.upper) == brute_force_objective_range(
            model, objective
        )


def test_session_free_variables_solved_closed_form():
    # Objective-only variables (no constraint mentions them) form the
    # free block and never touch a backend.
    model = LICMModel()
    a, b = model.new_vars(2)
    model.add((a + b) >= 1)
    free = model.new_var("free")
    objective = LinearExpr({a.index: 1, b.index: 1, free.index: 10}, 0)
    session = SolveSession(model)
    answer = session.bounds(objective)
    assert answer.stats["components"] == 2
    assert (answer.lower, answer.upper) == (1, 12)
    assert answer.upper_witness[free.index] == 1
    assert answer.lower_witness[free.index] == 0
