"""Quickstart: the paper's running example, end to end.

Builds the Figure 2(c) LICM encoding of an uncertain transaction, walks
through the Figure 3 intersection and the Example 8 count predicate, and
computes exact aggregate bounds with witness worlds — the core LICM loop.

Run:  python examples/quickstart.py
"""

from repro import (
    LICMModel,
    cardinality,
    count_bounds,
    licm_having_count,
    licm_intersect,
    licm_select,
)
from repro.relational.predicates import Compare, InSet
from repro.solver import write_lp
from repro.solver.model import from_licm
from repro.core.aggregates import count_objective


def figure2c() -> None:
    print("=== Figure 2(c): LICM encoding of a generalized transaction ===")
    model = LICMModel()
    trans = model.relation("TRANSITEM", ["TID", "ItemName"])
    b1, b2, b3 = model.new_vars(3)
    trans.insert(("T1", "Beer"), ext=b1)
    trans.insert(("T1", "Wine"), ext=b2)
    trans.insert(("T1", "Liquor"), ext=b3)
    trans.insert(("T1", "Shampoo"))  # certain tuple
    model.add_all(cardinality([b1, b2, b3], 1, 3))  # b1 + b2 + b3 >= 1
    print(trans.pretty())
    print("constraints:", list(model.constraints))

    bounds = count_bounds(trans)
    print(f"COUNT(*) over all possible worlds: {bounds}")
    print("a world attaining the maximum:", bounds.upper_witness)
    print()


def figure3() -> None:
    print("=== Figure 3: intersection in LICM ===")
    model = LICMModel()
    r1 = model.relation("R1", ["TID", "ItemName"])
    b1, b2 = model.new_vars(2)
    r1.insert(("T1", "wine"), ext=b1)
    r1.insert(("T1", "liquor"), ext=b2)
    r1.insert(("T2", "beer"))
    model.add(b1 + b2 >= 1)

    r2 = model.relation("R2", ["TID", "ItemName"])
    b3, b4 = model.new_vars(2)
    r2.insert(("T1", "wine"), ext=b3)
    r2.insert(("T2", "beer"), ext=b4)

    result = licm_intersect(r1, r2)
    print(result.pretty())
    print("lineage constraints added:")
    for constraint in list(model.constraints)[1:]:
        print("  ", constraint)
    print("COUNT(R1 ∩ R2):", count_bounds(result))
    print()


def example8() -> None:
    print("=== Example 8: transactions with >= 2 Health Care items ===")
    model = LICMModel()
    rel = model.relation("R", ["TID", "ItemName"])
    b1, b2, b3 = model.new_vars(3)
    rel.insert(("T1", "Pregnancy test"), ext=b1)
    rel.insert(("T1", "Diapers"), ext=b2)
    rel.insert(("T1", "Shampoo"), ext=b3)
    rel.insert(("T2", "Wine"))
    rel.insert(("T2", "Shampoo"), ext=model.new_var())
    rel.insert(("T3", "Pregnancy test"), ext=model.new_var())

    health = licm_select(
        rel, InSet("ItemName", {"Pregnancy test", "Diapers", "Shampoo"})
    )
    counted = licm_having_count(health, ["TID"], ">=", 2)
    print("qualifying TIDs (with their Ext):")
    print(counted.pretty())
    print("COUNT:", count_bounds(counted))
    print()


def lp_export() -> None:
    print("=== Exporting the BIP in CPLEX LP format ===")
    model = LICMModel()
    rel = model.relation("R", ["Item"])
    b1, b2 = model.new_vars(2)
    rel.insert(("beer",), ext=b1)
    rel.insert(("wine",), ext=b2)
    model.add((b1 + b2).eq(1))  # mutual exclusion
    problem, _ = from_licm(count_objective(rel), list(model.constraints))
    print(write_lp(problem, sense="max"))


def main() -> None:
    figure2c()
    figure3()
    example8()
    lp_export()


if __name__ == "__main__":
    main()
