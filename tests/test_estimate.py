"""Plan cardinality/cost estimation over LICM relations."""

import pytest

from repro.core.database import LICMModel
from repro.errors import QueryError
from repro.queries.estimate import (
    CardinalityInterval,
    choose_plan,
    estimate_cost,
    estimate_plan,
    predicate_selectivity,
)
from repro.relational.predicates import And, Between, Compare, InSet, Not, Or, TruePredicate
from repro.relational.query import (
    CountStar,
    HavingCount,
    Intersect,
    NaturalJoin,
    Product,
    Project,
    Scan,
    Select,
)


@pytest.fixture
def relations():
    model = LICMModel()
    r = model.relation("R", ["K", "A"])
    for i in range(10):
        r.insert((i, f"a{i}"))
    for i in range(10, 30):
        r.insert_maybe((i, f"a{i}"))
    s = model.relation("S", ["K", "B"])
    for i in range(5):
        s.insert((i, f"b{i}"))
    return {"R": r, "S": s}


def test_scan_interval(relations):
    estimate = estimate_plan(Scan("R"), relations)
    assert estimate.cardinality.lo == 10
    assert estimate.cardinality.hi == 30
    assert estimate.total_cost == 0


def test_scan_unknown_table(relations):
    with pytest.raises(QueryError):
        estimate_plan(Scan("MISSING"), relations)


def test_select_scales_interval(relations):
    estimate = estimate_plan(Select(Scan("R"), Between("K", 0, 5)), relations)
    assert estimate.cardinality.lo == pytest.approx(10 * 0.25)
    assert estimate.cardinality.hi == pytest.approx(30 * 0.25)
    assert estimate.rows_processed == 30


def test_predicate_selectivities():
    assert predicate_selectivity(TruePredicate()) == 1.0
    assert predicate_selectivity(Compare("A", "==", 1)) == 0.1
    assert predicate_selectivity(Compare("A", "<", 1)) == pytest.approx(1 / 3)
    assert predicate_selectivity(Not(Compare("A", "==", 1))) == pytest.approx(0.9)
    assert predicate_selectivity(InSet("A", {1, 2})) == pytest.approx(0.2)
    both = And([Compare("A", "==", 1), Between("K", 0, 1)])
    assert predicate_selectivity(both) == pytest.approx(0.025)
    either = Or([Compare("A", "==", 1), Compare("A", "==", 2)])
    assert predicate_selectivity(either) == pytest.approx(0.19)


def test_join_and_product(relations):
    product = estimate_plan(Product(Scan("R"), Scan("S")), relations)
    assert product.cardinality.hi == 30 * 5
    join = estimate_plan(NaturalJoin(Scan("R"), Scan("S")), relations)
    assert join.cardinality.hi <= product.cardinality.hi
    assert join.new_variables > 0


def test_intersect_bounds(relations):
    estimate = estimate_plan(Intersect(Scan("R"), Scan("R")), relations)
    assert estimate.cardinality.lo == 0
    assert estimate.cardinality.hi == 30


def test_having_count_shrinks(relations):
    estimate = estimate_plan(HavingCount(Scan("R"), ["K"], ">=", 2), relations)
    assert estimate.cardinality.hi < 30
    assert estimate.new_variables > 0


def test_scan_interval_brackets_truth(relations):
    """The [lo, hi] interval brackets the actual per-world cardinalities."""
    from repro.core.worlds import enumerate_assignments, instantiate

    model = relations["R"].model
    estimate = estimate_plan(Scan("R"), relations)
    variables = [row.ext.index for row in relations["R"].maybe_rows]
    for assignment in list(enumerate_assignments(model.constraints, variables, limit=50)):
        size = len(instantiate(relations["R"], assignment))
        assert estimate.cardinality.lo <= size <= estimate.cardinality.hi


def test_pushdown_reduces_estimated_cost(relations):
    """Selection below the join is estimated cheaper than above — the
    classical optimization carries over to LICM, as the paper argues."""
    predicate = Compare("A", "==", "a1")
    above = Select(NaturalJoin(Scan("R"), Scan("S")), predicate)
    below = NaturalJoin(Select(Scan("R"), predicate), Scan("S"))
    assert estimate_cost(below, relations) < estimate_cost(above, relations)


def test_choose_plan_picks_cheapest(relations):
    predicate = Compare("A", "==", "a1")
    above = Select(NaturalJoin(Scan("R"), Scan("S")), predicate)
    below = NaturalJoin(Select(Scan("R"), predicate), Scan("S"))
    assert choose_plan([above, below], relations) is below
    with pytest.raises(QueryError):
        choose_plan([], relations)


def test_aggregate_nodes_pass_through(relations):
    inner = Select(Scan("R"), TruePredicate())
    estimate = estimate_plan(CountStar(inner), relations)
    assert estimate.cardinality.hi == 30


def test_project_never_increases(relations):
    estimate = estimate_plan(Project(Scan("R"), ["K"]), relations)
    assert estimate.cardinality.hi <= 30
    assert estimate.cardinality.lo <= estimate.cardinality.hi
