"""(h, k, p)-coherence via global suppression (Xu et al., KDD 2008;
Appendix C).

Items are split into *public* (an attacker may know them) and *private*.
The requirement: every subset of at most ``p`` public items that occurs at
all must occur in at least ``k`` transactions, and within those
transactions no private item may appear in more than an ``h`` fraction.

The published algorithm greedily suppresses the public item that
participates in the most *minimal moles* (violating subsets); this
implementation follows that greedy loop with global suppression — a
suppressed item is removed from every transaction.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.anonymize.base import SuppressedDataset
from repro.data.transactions import TransactionDataset
from repro.errors import AnonymizationError


def _find_moles(
    transactions: List[Tuple[str, FrozenSet[str]]],
    public: Set[str],
    private: Set[str],
    h: float,
    k: int,
    p: int,
) -> List[Tuple[str, ...]]:
    """All violating public subsets of size <= p (the 'moles')."""
    support: Counter = Counter()
    private_with: Dict[Tuple[str, ...], Counter] = defaultdict(Counter)
    for _, itemset in transactions:
        public_part = sorted(itemset & public)
        private_part = itemset & private
        for size in range(1, min(p, len(public_part)) + 1):
            for subset in combinations(public_part, size):
                support[subset] += 1
                for secret in private_part:
                    private_with[subset][secret] += 1
    moles = []
    for subset, count in support.items():
        if count < k:
            moles.append(subset)
            continue
        worst = max(private_with[subset].values(), default=0)
        if worst / count > h:
            moles.append(subset)
    return moles


def coherence_suppress(
    dataset: TransactionDataset,
    private_items: Set[str],
    h: float = 0.8,
    k: int = 2,
    p: int = 2,
    reveal_counts: bool = False,
) -> SuppressedDataset:
    """Greedily suppress public items until (h, k, p)-coherence holds.

    :param reveal_counts: additionally publish, per transaction, how many
        item occurrences were suppressed — a cardinality side-channel the
        LICM encoder turns into exact count constraints (an extension
        beyond the paper's Appendix C encoding).
    """
    if not 0 < h <= 1:
        raise AnonymizationError(f"h must be in (0, 1], got {h}")
    private = set(private_items)
    unknown = private - set(dataset.items)
    if unknown:
        raise AnonymizationError(f"private items not in universe: {sorted(unknown)[:5]}")
    public = set(dataset.items) - private

    current = [(tid, frozenset(itemset)) for tid, itemset in dataset.transactions]
    suppressed: Set[str] = set()
    while True:
        moles = _find_moles(current, public, private, h, k, p)
        if not moles:
            break
        mole_count: Counter = Counter()
        for mole in moles:
            for item in mole:
                mole_count[item] += 1
        victim, _ = max(mole_count.items(), key=lambda kv: (kv[1], kv[0]))
        suppressed.add(victim)
        public.discard(victim)
        current = [(tid, itemset - {victim}) for tid, itemset in current]

    revealed = None
    if reveal_counts:
        original = dict(dataset.transactions)
        revealed = {
            tid: len(original[tid]) - len(itemset) for tid, itemset in current
        }
    return SuppressedDataset(
        source=dataset,
        transactions=current,
        suppressed_items=frozenset(suppressed),
        revealed_counts=revealed,
        params={"h": h, "k": k, "p": p},
    )


def verify_coherence(
    published: SuppressedDataset, private_items: Set[str], h: float, k: int, p: int
) -> bool:
    """Check (h, k, p)-coherence of the published transactions (for tests)."""
    public = (
        set(published.source.items) - set(private_items) - set(published.suppressed_items)
    )
    return not _find_moles(published.transactions, public, set(private_items), h, k, p)
