"""Domain generalization hierarchies over item universes.

Generalization-based anonymization (Appendix A) "assumes the existence of a
domain generalization hierarchy over the whole domain of items" — a tree
whose leaves are concrete items and whose internal nodes are generalized
items ("Alcohol" covering {Beer, Wine, Liquor} in Figure 2(b)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnonymizationError


class Hierarchy:
    """An item generalization tree.

    Nodes are strings; leaves are items.  Construct from an explicit
    ``parent`` map (child -> parent) with :meth:`from_parent_map`, or as a
    balanced tree over an ordered item list with :meth:`balanced`.
    """

    def __init__(self, parent: Dict[str, str], root: str):
        self.parent = dict(parent)
        self.root = root
        self.children: Dict[str, List[str]] = {}
        for child, par in self.parent.items():
            self.children.setdefault(par, []).append(child)
        for kids in self.children.values():
            kids.sort()
        self._leaves_cache: Dict[str, Tuple[str, ...]] = {}
        self._depth_cache: Dict[str, int] = {}
        self._ancestor_cache: Dict[str, frozenset] = {}
        self._validate()

    @classmethod
    def from_parent_map(cls, parent: Dict[str, str]) -> "Hierarchy":
        """Build from a child -> parent mapping (root is the node with no parent)."""
        children = set(parent)
        parents = set(parent.values())
        roots = parents - children
        if len(roots) != 1:
            raise AnonymizationError(f"hierarchy must have exactly one root, found {sorted(roots)}")
        return cls(parent, roots.pop())

    @classmethod
    def balanced(cls, items: Sequence[str], fanout: int = 4, root: str = "ALL") -> "Hierarchy":
        """A balanced tree over the item order with the given fanout.

        Consecutive items share parents, mimicking category structure
        (nearby item ids behave like one product family).
        """
        if fanout < 2:
            raise AnonymizationError("fanout must be at least 2")
        if not items:
            raise AnonymizationError("cannot build a hierarchy over zero items")
        parent: Dict[str, str] = {}
        level: List[str] = list(items)
        depth = 0
        while len(level) > 1:
            next_level = []
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                if len(level) <= fanout:
                    node = root
                else:
                    node = f"G{depth}_{start // fanout}"
                for child in group:
                    parent[child] = node
                next_level.append(node)
            level = next_level
            depth += 1
        return cls(parent, level[0])

    def _validate(self) -> None:
        for node in self.parent:
            seen = set()
            current = node
            while current != self.root:
                if current in seen:
                    raise AnonymizationError(f"hierarchy contains a cycle at {current!r}")
                seen.add(current)
                if current not in self.parent:
                    raise AnonymizationError(
                        f"node {current!r} is disconnected from the root"
                    )
                current = self.parent[current]

    # -- structure ----------------------------------------------------------
    def is_leaf(self, node: str) -> bool:
        return node not in self.children

    @property
    def leaves(self) -> Tuple[str, ...]:
        return self.leaves_under(self.root)

    def leaves_under(self, node: str) -> Tuple[str, ...]:
        """All concrete items covered by a (possibly generalized) node."""
        if node in self._leaves_cache:
            return self._leaves_cache[node]
        if self.is_leaf(node):
            result: Tuple[str, ...] = (node,)
        else:
            collected: List[str] = []
            for child in self.children[node]:
                collected.extend(self.leaves_under(child))
            result = tuple(collected)
        self._leaves_cache[node] = result
        return result

    def parent_of(self, node: str) -> Optional[str]:
        if node == self.root:
            return None
        if node not in self.parent:
            raise AnonymizationError(f"unknown hierarchy node {node!r}")
        return self.parent[node]

    def ancestors(self, node: str) -> List[str]:
        """Path from the node's parent up to the root."""
        out = []
        current = self.parent_of(node)
        while current is not None:
            out.append(current)
            current = self.parent_of(current)
        return out

    def depth(self, node: str) -> int:
        """Distance from the root (root has depth 0)."""
        if node in self._depth_cache:
            return self._depth_cache[node]
        value = 0 if node == self.root else self.depth(self.parent[node]) + 1
        self._depth_cache[node] = value
        return value

    def covers(self, node: str, item: str) -> bool:
        """Does the node generalize (or equal) the given leaf?"""
        return node in self.ancestor_set(item)

    def ancestor_set(self, node: str) -> frozenset:
        """The node plus all its ancestors, cached (hot path for recoding)."""
        cached = self._ancestor_cache.get(node)
        if cached is not None:
            return cached
        parent = self.parent.get(node)
        if parent is None:
            result = frozenset([node])
        else:
            result = self.ancestor_set(parent) | {node}
        self._ancestor_cache[node] = result
        return result

    def generalize(self, item: str, levels: int = 1) -> str:
        """Climb ``levels`` steps toward the root (stopping at the root)."""
        current = item
        for _ in range(levels):
            parent = self.parent_of(current)
            if parent is None:
                break
            current = parent
        return current

    def information_loss(self, node: str) -> float:
        """Normalized coverage: (|leaves(node)| - 1) / (|all leaves| - 1).

        The standard LM loss metric used by the generalization papers; 0 for
        a concrete item, 1 for the root.
        """
        total = len(self.leaves)
        if total <= 1:
            return 0.0
        return (len(self.leaves_under(node)) - 1) / (total - 1)

    def __contains__(self, node: str) -> bool:
        return node == self.root or node in self.parent

    def __repr__(self) -> str:
        return (
            f"Hierarchy({len(self.leaves)} leaves, "
            f"{len(self.children)} internal nodes, root={self.root!r})"
        )
