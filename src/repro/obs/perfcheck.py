"""Noise-aware performance-regression gate (``python -m repro perfcheck``).

Micro-benchmark CI gates fail in two boring ways: they flake (one noisy
rep on a shared runner fails the build) or they rot (thresholds so loose
they never fire).  This gate spends its effort on noise control instead
of raw precision:

* **Interleaved reps** — scenarios run round-robin (A B C A B C ...), not
  back-to-back, so thermal drift and allocator growth spread evenly
  across scenarios instead of biasing whichever ran last.  Every scenario
  gets one untimed warmup rep first.
* **Median + MAD** — the gate compares medians and sizes its tolerance by
  the median absolute deviation, both robust to the one-slow-rep outliers
  that wreck mean/stddev gates.
* **CPU calibration** — a fixed pure-Python spin is timed alongside the
  scenarios; the baseline's spin time is stored, and at check time every
  baseline median is rescaled by ``current_spin / baseline_spin``.  A
  slower CI runner raises the bar instead of failing the build.

The decision rule per scenario::

    limit  = baseline_median * speed_ratio * (1 + rel_tol)
             + mad_multiplier * max(baseline_mad * speed_ratio, current_mad)
    regression  iff  current_median > limit

Baselines live in ``benchmarks/BENCH_perfcheck.json`` (committed);
refresh with ``python -m repro perfcheck --update`` after an intentional
performance change.  ``--inject-slowdown 2.0`` busy-waits each rep to
double its wall time — the self-test that the gate actually fires.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "Scenario",
    "calibrate",
    "check",
    "decompose_scenarios",
    "default_baseline_path",
    "default_scenarios",
    "fabric_scenarios",
    "kernels_scenarios",
    "main",
    "measure",
    "tiers_scenarios",
]

_BASELINE_NAME = "BENCH_perfcheck.json"


def default_baseline_path() -> Optional[str]:
    """The nearest ``benchmarks/BENCH_perfcheck.json``, or ``None``.

    Searches every ancestor of the working directory first (works from
    any subdirectory of a checkout), then every ancestor of this file
    (the src-layout checkout, regardless of CWD).  If no baseline file
    exists yet, the first *existing* ``benchmarks/`` directory found the
    same way is where ``--update`` will create one.  A pip-installed
    package sitting outside any checkout has neither — callers must
    pass ``--baseline`` explicitly.
    """
    candidates: List[str] = []
    for start in (os.getcwd(), os.path.dirname(os.path.abspath(__file__))):
        current = start
        while True:
            bench_dir = os.path.join(current, "benchmarks")
            if bench_dir not in candidates:
                candidates.append(bench_dir)
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    for bench_dir in candidates:
        if os.path.isfile(os.path.join(bench_dir, _BASELINE_NAME)):
            return os.path.join(bench_dir, _BASELINE_NAME)
    for bench_dir in candidates:
        if os.path.isdir(bench_dir):
            return os.path.join(bench_dir, _BASELINE_NAME)
    return None

#: Iterations of the calibration spin (~tens of ms of pure Python).
_CALIBRATION_ITERS = 400_000


@dataclass
class Scenario:
    """One gated workload: a setup thunk and a timed rep."""

    name: str
    #: Built once, before the warmup rep; its return value is passed to
    #: every ``run`` call.  Setup cost is *not* gated.
    setup: Callable[[], object]
    #: One timed repetition.
    run: Callable[[object], None]
    state: object = field(default=None, repr=False)


def calibrate(iters: Optional[int] = None) -> float:
    """Seconds for a fixed pure-Python spin — the machine-speed yardstick."""
    iters = _CALIBRATION_ITERS if iters is None else iters
    acc = 0
    t0 = time.perf_counter()
    for i in range(iters):
        acc += i ^ (acc >> 3)
    elapsed = time.perf_counter() - t0
    # acc is deliberately consumed so the loop cannot be optimized away.
    return elapsed + (acc & 0) * 1e-12


def _mad(samples: List[float], center: float) -> float:
    return statistics.median(abs(s - center) for s in samples)


def _busy_wait(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


def default_scenarios(quick: bool = False) -> List[Scenario]:
    """The gated workloads, each one layer of the stack.

    Imports are local so ``perfcheck --help`` stays instant and the module
    is importable without the heavy engine modules.
    """
    from repro.engine.session import SolveSession
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentContext
    from repro.queries import answer_licm
    from repro.queries.licm_eval import evaluate_licm

    tx = 200 if quick else 400
    items = 48 if quick else 96

    def make_context() -> ExperimentContext:
        config = ExperimentConfig(
            num_transactions=tx, num_items=items, mc_samples=8, seed=11
        )
        context = ExperimentContext(config)
        context.encoding("km", 2)  # encode outside the timed region
        return context

    # One context shared by the solve scenarios (built in the first setup
    # that needs it); the encode scenario always builds its own.
    shared: Dict[str, ExperimentContext] = {}

    def shared_context() -> ExperimentContext:
        if "ctx" not in shared:
            shared["ctx"] = make_context()
        return shared["ctx"]

    def setup_encode():
        context = shared_context()
        return context

    def run_encode(context) -> None:
        from repro.anonymize import encode_generalized, km_anonymize

        anonymized = km_anonymize(
            context.dataset, context.hierarchy, 2, context.config.km_m
        )
        encode_generalized(anonymized)

    def setup_solve_cold():
        context = shared_context()
        encoded = context.encoding("km", 2).encoded
        plan = context.plan("Q1", encoded)
        return (encoded, plan)

    def run_solve_cold(state) -> None:
        encoded, plan = state
        session = SolveSession(encoded.model, cache_size=0)
        answer_licm(encoded, plan, session=session)

    def setup_solve_warm():
        context = shared_context()
        encoded = context.encoding("km", 2).encoded
        plan = context.plan("Q1", encoded)
        session = context.session("km", 2)
        answer_licm(encoded, plan, session=session)  # populate the cache
        return (encoded, plan, session)

    def run_solve_warm(state) -> None:
        encoded, plan, session = state
        answer_licm(encoded, plan, session=session)

    def setup_licm_eval():
        context = shared_context()
        encoded = context.encoding("km", 2).encoded
        plan = context.plan("Q1", encoded)
        return (encoded, plan)

    def run_licm_eval(state) -> None:
        encoded, plan = state
        evaluate_licm(plan, encoded.relations)

    scenarios = [
        Scenario("encode_km", setup_encode, run_encode),
        Scenario("licm_eval_q1", setup_licm_eval, run_licm_eval),
        Scenario("solve_cold_q1", setup_solve_cold, run_solve_cold),
        Scenario("solve_warm_q1", setup_solve_warm, run_solve_warm),
    ]
    if quick:
        # Drop the slowest scenario; the cold solve dominates quick runs.
        scenarios = [s for s in scenarios if s.name != "solve_cold_q1"]
    return scenarios


def decompose_scenarios(quick: bool = False) -> List[Scenario]:
    """The ``decompose``-mode workloads: perturbed re-queries on the
    k-anonymity encoding, whose group constraints make the BIP split into
    ~one block per group (see docs/solver.md).

    Each rep re-queries with a trivially-true cardinality constraint on a
    fresh variable, so the whole-problem fingerprint always misses: the
    decomposed arm re-solves only the touched component (warm per-component
    cache), the monolithic arm re-solves everything.  Gating both keeps the
    decomposition win *and* the monolithic fallback from regressing.
    """
    from repro.core.constraints import LinearConstraint
    from repro.engine.session import SolveSession
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentContext
    from repro.queries.licm_eval import evaluate_licm
    from repro.solver.result import SolverOptions

    tx = 300 if quick else 600
    items = 64 if quick else 128

    shared: Dict[str, object] = {}

    def workload():
        if "w" not in shared:
            config = ExperimentConfig(
                num_transactions=tx, num_items=items, mc_samples=8, seed=3
            )
            context = ExperimentContext(config)
            encoded = context.encoding("k-anonymity", 2).encoded
            plan = context.plan("Q1", encoded)
            objective = evaluate_licm(plan, encoded.relations)
            shared["w"] = (encoded, objective, sorted(objective.coeffs))
        return shared["w"]

    def make_setup(enable_decomposition: bool):
        def setup():
            encoded, objective, variables = workload()
            session = SolveSession(
                encoded.model,
                options=SolverOptions(enable_decomposition=enable_decomposition),
            )
            session.bounds(objective)  # fill the cache outside the timed region
            return {
                "session": session,
                "objective": objective,
                "variables": variables,
                "rep": 0,
            }

        return setup

    def run_requery(state) -> None:
        # A different perturbation target every rep: the exact query is
        # never in the LRU, only (for the decomposed arm) its components.
        var = state["variables"][state["rep"] % len(state["variables"])]
        state["rep"] += 1
        state["session"].bounds(
            state["objective"],
            extra_constraints=[LinearConstraint([(1, var)], "<=", 1)],
        )

    return [
        Scenario("requery_decomposed", make_setup(True), run_requery),
        Scenario("requery_monolithic", make_setup(False), run_requery),
    ]


def fabric_scenarios(quick: bool = False) -> List[Scenario]:
    """The ``fabric``-mode workloads: one cold solve per rep through each
    executor fabric, plus the L2 warm-get path.

    Cache is disabled (``cache_size=0``) so every rep pays the real
    prepare + solve; the three solve scenarios differ *only* in the
    fabric, so their relative medians measure pure dispatch overhead
    (inline) vs thread scheduling vs fork+pickle+IPC.  The L2 scenario
    gates the SQLite read path a process-fabric worker takes before
    every solve.
    """
    import tempfile

    from repro.engine.cache import CachedSolve
    from repro.engine.fabric import make_fabric
    from repro.engine.l2cache import L2SolveCache
    from repro.engine.session import SolveSession
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentContext
    from repro.queries.licm_eval import evaluate_licm

    tx = 200 if quick else 400
    items = 48 if quick else 96

    shared: Dict[str, object] = {}

    def workload():
        if "w" not in shared:
            config = ExperimentConfig(
                num_transactions=tx, num_items=items, mc_samples=8, seed=11
            )
            context = ExperimentContext(config)
            encoded = context.encoding("km", 2).encoded
            plan = context.plan("Q1", encoded)
            shared["w"] = (encoded, evaluate_licm(plan, encoded.relations))
        return shared["w"]

    def make_setup(kind: str, workers: int):
        def setup():
            encoded, objective = workload()
            session = SolveSession(
                encoded.model, cache_size=0, fabric=make_fabric(kind, workers)
            )
            return {"session": session, "objective": objective}

        return setup

    def run_solve(state) -> None:
        state["session"].bounds(state["objective"])

    def setup_l2():
        path = os.path.join(tempfile.mkdtemp(prefix="perfcheck_l2_"), "l2.sqlite")
        cache = L2SolveCache(path)
        entry = CachedSolve(
            status="optimal",
            objective=42,
            x_canonical=tuple(i % 2 for i in range(64)),
            bound=42.0,
            nodes=9,
            backend="bb",
        )
        for i in range(32):
            cache.put(f"fingerprint-{i}", "max", entry)
        return {"cache": cache}

    def run_l2_warm_get(state) -> None:
        cache = state["cache"]
        for _ in range(8):
            for i in range(32):
                assert cache.get(f"fingerprint-{i}", "max") is not None

    return [
        Scenario("solve_inline", make_setup("inline", 1), run_solve),
        Scenario("solve_thread", make_setup("thread", 2), run_solve),
        Scenario("solve_process", make_setup("process", 2), run_solve),
        Scenario("l2_warm_get", setup_l2, run_l2_warm_get),
    ]


def kernels_scenarios(quick: bool = False) -> List[Scenario]:
    """The ``kernels``-mode workloads: the vectorized B&B inner loops
    against their scalar fallback (see docs/performance.md).

    ``solve_kernels_auto`` is the tentpole path — a fully cold decomposed
    k-anonymity solve with the numpy kernels and node-0 seeding, where
    nearly every component closes at the root with zero LP calls.
    ``solve_kernels_off`` is the same solve through the scalar worklist
    paths (the parity oracle), gated so the fallback cannot silently rot.
    ``kernel_microbench`` times compile → propagate → greedy seed →
    surrogate bound on one synthetic BIP, isolating the kernel module
    from the engine around it.
    """
    import random

    from repro.engine.session import SolveSession
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentContext
    from repro.queries.licm_eval import evaluate_licm
    from repro.solver.result import SolverOptions

    tx = 300 if quick else 600
    items = 64 if quick else 128

    shared: Dict[str, object] = {}

    def workload():
        if "w" not in shared:
            config = ExperimentConfig(
                num_transactions=tx, num_items=items, mc_samples=8, seed=3
            )
            context = ExperimentContext(config)
            encoded = context.encoding("k-anonymity", 2).encoded
            plan = context.plan("Q1", encoded)
            shared["w"] = (encoded, evaluate_licm(plan, encoded.relations))
        return shared["w"]

    def make_setup(kernels: str):
        def setup():
            encoded, objective = workload()
            return {"encoded": encoded, "objective": objective, "kernels": kernels}

        return setup

    def run_cold_solve(state) -> None:
        # A fresh session per rep: every rep pays the real cold
        # prepare + solve, exactly the path the kernels accelerate.
        session = SolveSession(
            state["encoded"].model,
            cache_size=0,
            options=SolverOptions(kernels=state["kernels"]),
        )
        session.bounds(state["objective"])

    def setup_micro():
        from repro.solver import kernels as kernels_module
        from repro.solver.model import BIPConstraint, BIPProblem

        rng = random.Random(7)
        num_vars = 400 if quick else 900
        constraints = []
        for _ in range(num_vars // 2):
            arity = rng.randint(2, 6)
            idxs = rng.sample(range(num_vars), arity)
            terms = tuple((rng.choice((1, 1, 1, -1)), i) for i in idxs)
            positive = sum(c for c, _ in terms if c > 0)
            constraints.append(
                BIPConstraint(terms, "<=", rng.randint(1, max(1, positive)))
            )
        problem = BIPProblem(
            num_vars=num_vars,
            constraints=constraints,
            objective={i: rng.randint(-3, 3) for i in range(num_vars)},
        )
        return {"kernels": kernels_module, "problem": problem}

    def run_micro(state) -> None:
        kernels_module = state["kernels"]
        compiled = kernels_module.compile_problem(state["problem"])
        domains = compiled.propagate(compiled.root_domains())
        if domains is not None:
            compiled.greedy_seed(domains)
            compiled.upper_bound(domains)

    return [
        Scenario("solve_kernels_auto", make_setup("auto"), run_cold_solve),
        Scenario("solve_kernels_off", make_setup("off"), run_cold_solve),
        Scenario("kernel_microbench", setup_micro, run_micro),
    ]


def tiers_scenarios(quick: bool = False) -> List[Scenario]:
    """The ``tiers``-mode workloads: the same prepared k-anonymity Q1
    problem answered at each precision level (see docs/estimators.md).

    The session cache is disabled, so the ``tight`` arm pays the full
    exact BIP solve every rep while the estimator arms pay only the tier
    cascade — their relative medians *are* the fast-vs-tight win the
    tiered answerer exists for, and gating all three keeps both the
    estimator overhead and the exact path from regressing.
    """
    from repro.engine.session import SolveSession
    from repro.estimator import TieredAnswerer
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentContext
    from repro.queries.licm_eval import evaluate_licm

    tx = 300 if quick else 600
    items = 64 if quick else 128

    shared: Dict[str, object] = {}

    def workload():
        if "w" not in shared:
            config = ExperimentConfig(
                num_transactions=tx, num_items=items, mc_samples=8, seed=3
            )
            context = ExperimentContext(config)
            encoded = context.encoding("km", 2).encoded
            plan = context.plan("Q1", encoded)
            shared["w"] = (encoded, evaluate_licm(plan, encoded.relations))
        return shared["w"]

    def make_setup(precision: str):
        def setup():
            encoded, objective = workload()
            session = SolveSession(encoded.model, cache_size=0)
            prepared = session.prepare(objective)
            return {
                "answerer": TieredAnswerer(),
                "session": session,
                "prepared": prepared,
                "precision": precision,
            }

        return setup

    def run_answer(state) -> None:
        # A fresh memo per rep: the per-request estimator memo never
        # outlives a request in the service either.
        state["answerer"].answer(
            state["session"], state["prepared"], state["precision"], memo={}
        )

    return [
        Scenario("answer_fast", make_setup("fast"), run_answer),
        Scenario("answer_balanced", make_setup("balanced"), run_answer),
        Scenario("answer_tight", make_setup("tight"), run_answer),
    ]


def measure(
    scenarios: List[Scenario],
    reps: int = 7,
    inject_slowdown: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run every scenario ``reps`` times, round-robin interleaved.

    Returns ``{"calibration_s": ..., "scenarios": {name: {"samples": [...],
    "median_s": ..., "mad_s": ...}}}``.  ``inject_slowdown`` > 1 busy-waits
    each rep out to ``factor ×`` its measured wall time (the gate's
    self-test knob).
    """
    say = progress or (lambda _msg: None)
    for scenario in scenarios:
        say(f"setup {scenario.name}")
        scenario.state = scenario.setup()
        scenario.run(scenario.state)  # warmup (untimed)
    samples: Dict[str, List[float]] = {s.name: [] for s in scenarios}
    for rep in range(reps):
        for scenario in scenarios:
            t0 = time.perf_counter()
            scenario.run(scenario.state)
            elapsed = time.perf_counter() - t0
            if inject_slowdown > 1.0:
                _busy_wait(elapsed * (inject_slowdown - 1.0))
                elapsed *= inject_slowdown
            samples[scenario.name].append(elapsed)
        say(f"rep {rep + 1}/{reps} done")
    calibration = statistics.median(calibrate() for _ in range(3))
    out = {"calibration_s": calibration, "scenarios": {}}
    for name, values in samples.items():
        median = statistics.median(values)
        out["scenarios"][name] = {
            "samples": values,
            "median_s": median,
            "mad_s": _mad(values, median),
        }
    return out


def check(
    current: dict,
    baseline: dict,
    rel_tol: float = 0.35,
    mad_multiplier: float = 4.0,
) -> dict:
    """Compare a :func:`measure` result against a stored baseline.

    Returns a report dict; ``report["ok"]`` is the gate verdict.  Scenarios
    present on only one side are reported but never fail the gate (a new
    scenario needs ``--update`` before it can regress).
    """
    base_cal = float(baseline.get("calibration_s") or 0.0)
    cur_cal = float(current.get("calibration_s") or 0.0)
    speed_ratio = (cur_cal / base_cal) if base_cal > 0 and cur_cal > 0 else 1.0
    report = {
        "ok": True,
        "speed_ratio": speed_ratio,
        "rel_tol": rel_tol,
        "mad_multiplier": mad_multiplier,
        "scenarios": {},
        "missing_from_baseline": [],
        "missing_from_current": [],
    }
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name in sorted(set(base_scenarios) | set(cur_scenarios)):
        if name not in base_scenarios:
            report["missing_from_baseline"].append(name)
            continue
        if name not in cur_scenarios:
            report["missing_from_current"].append(name)
            continue
        base = base_scenarios[name]
        cur = cur_scenarios[name]
        scaled_median = base["median_s"] * speed_ratio
        mad_slack = mad_multiplier * max(base["mad_s"] * speed_ratio, cur["mad_s"])
        limit = scaled_median * (1.0 + rel_tol) + mad_slack
        regressed = cur["median_s"] > limit
        report["scenarios"][name] = {
            "baseline_median_s": base["median_s"],
            "baseline_scaled_s": scaled_median,
            "current_median_s": cur["median_s"],
            "current_mad_s": cur["mad_s"],
            "limit_s": limit,
            "ratio": (cur["median_s"] / scaled_median) if scaled_median > 0 else 0.0,
            "regressed": regressed,
        }
        if regressed:
            report["ok"] = False
    return report


def _format_report(report: dict) -> str:
    lines = [
        f"perfcheck: speed_ratio={report['speed_ratio']:.3f} "
        f"rel_tol={report['rel_tol']:.0%} mad_mult={report['mad_multiplier']:g}"
    ]
    for name, row in report["scenarios"].items():
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {name:<16} {row['current_median_s'] * 1e3:8.1f} ms "
            f"vs limit {row['limit_s'] * 1e3:8.1f} ms "
            f"(baseline {row['baseline_scaled_s'] * 1e3:.1f} ms scaled, "
            f"x{row['ratio']:.2f})  {verdict}"
        )
    for name in report["missing_from_baseline"]:
        lines.append(f"  {name:<16} NEW — not in baseline (run --update to gate it)")
    for name in report["missing_from_current"]:
        lines.append(f"  {name:<16} SKIPPED — in baseline but not measured")
    lines.append("perfcheck: PASS" if report["ok"] else "perfcheck: FAIL")
    return "\n".join(lines)


def _format_baselines(
    document: dict,
    path: str,
    rel_tol: float = 0.35,
    mad_multiplier: float = 4.0,
) -> str:
    """One table over every committed baseline mode (``--report``).

    The limit column is what :func:`check` would enforce on a machine
    exactly as fast as the baseline one (``speed_ratio = 1``); a slower
    runner scales it up at check time.
    """
    lines = [
        f"perfcheck baselines: {path}",
        f"(limits at speed_ratio=1, rel_tol={rel_tol:.0%}, "
        f"mad_mult={mad_multiplier:g})",
        "",
        f"  {'mode':<10} {'metric':<20} {'reps':>4} "
        f"{'baseline':>10} {'mad':>9} {'limit':>10}",
    ]
    modes = document.get("modes", {})
    if not modes:
        lines.append("  (no baselines committed yet — run --update)")
        return "\n".join(lines)
    for mode in sorted(modes):
        entry = modes[mode]
        reps = entry.get("reps", "?")
        for name in sorted(entry.get("scenarios", {})):
            row = entry["scenarios"][name]
            median = row["median_s"]
            mad = row["mad_s"]
            limit = median * (1.0 + rel_tol) + mad_multiplier * mad
            lines.append(
                f"  {mode:<10} {name:<20} {reps:>4} "
                f"{median * 1e3:>8.1f}ms {mad * 1e3:>7.2f}ms "
                f"{limit * 1e3:>8.1f}ms"
            )
        cal = entry.get("calibration_s")
        if cal is not None:
            lines.append(
                f"  {mode:<10} {'(cpu calibration)':<20} {'':>4} "
                f"{cal * 1e3:>8.1f}ms"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro perfcheck",
        description="noise-aware perf-regression gate (median + MAD, "
        "CPU-calibrated against the committed baseline)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: the nearest "
        "benchmarks/BENCH_perfcheck.json above the working directory)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured result as the new baseline and exit 0",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller dataset, fewer reps, no cold-solve scenario (CI mode)",
    )
    parser.add_argument(
        "--decompose",
        action="store_true",
        help="gate the block-separable decomposition scenarios instead "
        "(perturbed re-queries, decomposed vs monolithic; mode 'decompose')",
    )
    parser.add_argument(
        "--fabric",
        action="store_true",
        help="gate the executor-fabric scenarios instead (cold solves "
        "through inline/thread/process fabrics + L2 warm gets; mode 'fabric')",
    )
    parser.add_argument(
        "--tiers",
        action="store_true",
        help="gate the tiered-answerer scenarios instead (the same prepared "
        "problem at precision fast/balanced/tight; mode 'tiers')",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="gate the vectorized-kernel scenarios instead (cold decomposed "
        "solves with kernels auto/off + a kernel microbench; mode 'kernels')",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed reps per scenario")
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.35,
        help="relative tolerance over the scaled baseline median",
    )
    parser.add_argument(
        "--mad-mult",
        type=float,
        default=4.0,
        help="MAD multiplier added to the limit",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="busy-wait each rep to FACTOR x its wall time (gate self-test)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the report as JSON"
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="render every committed baseline (all modes) as one table "
        "and exit — no measuring",
    )
    args = parser.parse_args(argv)
    mode_flags = (
        ("--decompose " if args.decompose else "")
        + ("--fabric " if args.fabric else "")
        + ("--tiers " if args.tiers else "")
        + ("--kernels " if args.kernels else "")
        + ("--quick " if args.quick else "")
    )

    # Resolve the baseline *before* spending minutes measuring, and
    # distinguish "not a repo checkout" from "baseline missing".
    baseline_path = args.baseline or default_baseline_path()
    if baseline_path is None:
        print(
            "perfcheck: no benchmarks/ directory found above "
            f"{os.getcwd()} or the installed package — this is not a "
            "repo checkout; pass --baseline PATH",
            file=sys.stderr,
        )
        return 2
    if args.report:
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            print(
                f"perfcheck: no baseline at {baseline_path} — run --update first",
                file=sys.stderr,
            )
            return 2
        print(
            _format_baselines(
                document,
                baseline_path,
                rel_tol=args.rel_tol,
                mad_multiplier=args.mad_mult,
            )
        )
        return 0
    if not args.update and not os.path.isfile(baseline_path):
        print(
            f"perfcheck: no baseline at {baseline_path} — run "
            f"`perfcheck {mode_flags}--update` first",
            file=sys.stderr,
        )
        return 2

    reps = args.reps if args.reps is not None else (5 if args.quick else 7)
    if sum((args.decompose, args.fabric, args.tiers, args.kernels)) > 1:
        print(
            "perfcheck: --decompose, --fabric, --tiers and --kernels are exclusive",
            file=sys.stderr,
        )
        return 2
    if args.kernels:
        scenarios = kernels_scenarios(quick=args.quick)
        mode = "kernels"
    elif args.tiers:
        scenarios = tiers_scenarios(quick=args.quick)
        mode = "tiers"
    elif args.fabric:
        scenarios = fabric_scenarios(quick=args.quick)
        mode = "fabric"
    elif args.decompose:
        scenarios = decompose_scenarios(quick=args.quick)
        mode = "decompose"
    else:
        scenarios = default_scenarios(quick=args.quick)
        mode = "quick" if args.quick else "full"
    result = measure(
        scenarios,
        reps=reps,
        inject_slowdown=args.inject_slowdown,
        progress=lambda msg: print(f"perfcheck: {msg}", file=sys.stderr),
    )
    result["reps"] = reps

    if args.update:
        # The baseline file holds one entry per mode — updating the quick
        # (CI) baseline never clobbers the full (local) one, and vice versa.
        document = {}
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            pass
        document.setdefault("modes", {})[mode] = result
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"perfcheck: {mode} baseline written to {baseline_path}")
        return 0

    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError:
        print(
            f"perfcheck: no baseline at {baseline_path} — run with --update first",
            file=sys.stderr,
        )
        return 2
    baseline = document.get("modes", {}).get(mode)
    if baseline is None:
        print(
            f"perfcheck: baseline {baseline_path} has no {mode!r} entry — "
            f"run `perfcheck {mode_flags}--update` first",
            file=sys.stderr,
        )
        return 2

    report = check(
        result, baseline, rel_tol=args.rel_tol, mad_multiplier=args.mad_mult
    )
    report["measured"] = result
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(_format_report(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
