"""Unit tests for LICMRelation and LICMModel."""

import pytest

from repro.core.database import LICMModel
from repro.core.relation import is_certain
from repro.errors import ModelError, SchemaError


@pytest.fixture
def model():
    return LICMModel()


def test_insert_certain_and_maybe(model):
    rel = model.relation("R", ["A", "B"])
    certain = rel.insert(("x", 1))
    maybe = rel.insert_maybe(("y", 2))
    assert certain.certain
    assert not maybe.certain
    assert len(rel) == 2
    assert rel.maybe_rows == [maybe]
    assert rel.certain_rows == [certain]


def test_is_certain_distinguishes_one_from_var(model):
    var = model.new_var()
    assert is_certain(1)
    assert not is_certain(var)


def test_arity_checked(model):
    rel = model.relation("R", ["A", "B"])
    with pytest.raises(SchemaError):
        rel.insert(("only-one",))


def test_ext_type_checked(model):
    rel = model.relation("R", ["A"])
    with pytest.raises(SchemaError):
        rel.insert(("x",), ext=0)
    with pytest.raises(SchemaError):
        rel.insert(("x",), ext="yes")


def test_duplicate_attributes_rejected(model):
    with pytest.raises(SchemaError):
        model.relation("R", ["A", "A"])


def test_ext_not_allowed_as_attribute(model):
    with pytest.raises(SchemaError):
        model.relation("R", ["A", "Ext"])


def test_column_and_ext_column(model):
    rel = model.relation("R", ["A", "B"])
    var = model.new_var()
    rel.insert(("x", 1))
    rel.insert(("y", 2), ext=var)
    assert rel.column("A") == ["x", "y"]
    assert rel.ext_column() == [1, var]
    with pytest.raises(SchemaError):
        rel.column("missing")


def test_getter_extracts_keys(model):
    rel = model.relation("R", ["A", "B", "C"])
    row = rel.insert((1, 2, 3))
    get = rel.getter(["C", "A"])
    assert get(row) == (3, 1)


def test_pretty_renders_rows(model):
    rel = model.relation("R", ["TID", "Item"])
    rel.insert(("T1", "Beer"), ext=model.new_var())
    text = rel.pretty()
    assert "TID" in text and "Ext" in text and "Beer" in text


def test_model_registers_relations(model):
    model.relation("R", ["A"])
    with pytest.raises(ModelError):
        model.relation("R", ["B"])
    assert "R" in model.relations


def test_derived_relations_get_fresh_names(model):
    first = model.derived(["A"])
    second = model.derived(["A"])
    assert first.name != second.name
    assert first.name not in model.relations


def test_check_owns(model):
    other = LICMModel()
    rel = other.relation("R", ["A"])
    with pytest.raises(ModelError):
        model.check_owns(rel)


def test_stats(model):
    rel = model.relation("R", ["A"])
    rel.insert(("x",))
    var = model.new_var()
    rel.insert(("y",), ext=var)
    model.add(var <= 1)
    stats = model.stats()
    assert stats == {"variables": 1, "constraints": 1, "relations": 1, "tuples": 2}
