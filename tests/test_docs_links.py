"""Documentation link checker.

Walks every ``*.md`` file in the repository and fails on:

* relative markdown links (``[text](target)``) whose target does not
  exist on disk (fragments are stripped; absolute URLs are skipped);
* backticked code references that *look like* repo paths
  (``src/repro/...``, ``docs/...``, ``tests/...``, ...) but point at
  nothing.

Also pins the architecture map's coverage: ``docs/architecture.md`` must
link every module directory under ``src/repro/``.
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))

#: Archives of *external* content (retrieved papers, exemplar snippets
#: from other repositories) whose links are not ours to keep alive.
EXCLUDE_FILES = {"SNIPPETS.md", "PAPERS.md"}
EXCLUDE_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".hypothesis"}

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
#: A code span is treated as a repo-path claim only when it starts with a
#: top-level source directory and contains no wildcard/placeholder syntax
#: (an ``...`` ellipsis marks a path *family*, not one file).
PATH_CLAIM = re.compile(
    r"^(?:src|docs|tests|benchmarks|examples)/(?!.*\.\.)[A-Za-z0-9_\-./]+$"
)


def markdown_files():
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in EXCLUDE_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in EXCLUDE_FILES:
                found.append(os.path.join(dirpath, name))
    assert found, "no markdown files discovered — wrong repo root?"
    return sorted(found)


def _resolve(base_dir: str, target: str) -> str:
    target = target.split("#", 1)[0]
    if not target:  # pure in-page anchor
        return ""
    return os.path.normpath(os.path.join(base_dir, target))


def _iter_dead_links(path: str):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    base_dir = os.path.dirname(path)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = _resolve(base_dir, target)
        if resolved and not os.path.exists(resolved):
            yield target
    for match in CODE_SPAN.finditer(text):
        claim = match.group(1)
        if PATH_CLAIM.match(claim) and not os.path.exists(
            os.path.join(REPO_ROOT, claim)
        ):
            yield claim


@pytest.mark.parametrize(
    "path", markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_no_dead_links(path):
    dead = sorted(set(_iter_dead_links(path)))
    assert not dead, (
        f"{os.path.relpath(path, REPO_ROOT)} references missing targets: {dead}"
    )


def test_architecture_map_links_every_module():
    src = os.path.join(REPO_ROOT, "src", "repro")
    modules = sorted(
        name
        for name in os.listdir(src)
        if os.path.isdir(os.path.join(src, name)) and name != "__pycache__"
    )
    assert modules, "src/repro has no module directories?"
    arch = os.path.join(REPO_ROOT, "docs", "architecture.md")
    with open(arch, encoding="utf-8") as handle:
        text = handle.read()
    targets = {
        _resolve(os.path.dirname(arch), match.group(1))
        for match in LINK.finditer(text)
    }
    missing = [
        name
        for name in modules
        if os.path.normpath(os.path.join(src, name)) not in targets
    ]
    assert not missing, f"docs/architecture.md does not link module dirs: {missing}"


def test_performance_guide_covers_every_bench_artifact():
    """docs/performance.md is the consolidated index of committed
    benchmark artifacts: every BENCH_*.json in the repo must be
    explained there, and the page must be reachable from both the
    top-level README and the docs index."""
    perf = os.path.join(REPO_ROOT, "docs", "performance.md")
    assert os.path.isfile(perf), "docs/performance.md is missing"
    with open(perf, encoding="utf-8") as handle:
        text = handle.read()

    artifacts = sorted(
        name
        for base in (REPO_ROOT, os.path.join(REPO_ROOT, "benchmarks"))
        for name in os.listdir(base)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    assert artifacts, "no BENCH_*.json artifacts found — wrong repo root?"
    unexplained = [name for name in artifacts if name not in text]
    assert not unexplained, (
        f"docs/performance.md does not cover benchmark artifacts: {unexplained}"
    )

    for index in ("README.md", os.path.join("docs", "README.md")):
        with open(os.path.join(REPO_ROOT, index), encoding="utf-8") as handle:
            assert "performance.md" in handle.read(), (
                f"{index} does not link docs/performance.md"
            )
