"""repro — reproduction of "Aggregate Query Answering on Possibilistic Data
with Cardinality Constraints" (Cormode, Srivastava, Shen, Yu; ICDE 2012).

The package implements LICM (Linear Integer Constraint Model): a working
model for uncertain data with cardinality constraints, relational operators
translated into the model, and exact aggregate bounds via binary integer
programming — plus the anonymization substrates, Monte Carlo baseline and
experiment harness used by the paper's evaluation.

Quickstart::

    from repro import LICMModel, cardinality, licm_select, count_bounds
    from repro.relational import Compare

    model = LICMModel()
    trans = model.relation("TRANSITEM", ["TID", "ItemName"])
    b1, b2, b3 = model.new_vars(3)
    trans.insert(("T1", "Beer"), ext=b1)
    trans.insert(("T1", "Wine"), ext=b2)
    trans.insert(("T1", "Liquor"), ext=b3)
    trans.insert(("T1", "Shampoo"))            # certain tuple
    model.add_all(cardinality([b1, b2, b3], 1, 3))

    result = licm_select(trans, Compare("ItemName", "!=", "Shampoo"))
    print(count_bounds(result))                # [1, 3]
"""

from repro.core import (
    AggregateBounds,
    BoolVar,
    PriorModel,
    avg_bounds,
    expected_value,
    extend_assignment,
    group_count_bounds,
    tail_bounds,
    LICMModel,
    LICMRelation,
    LinearConstraint,
    LinearExpr,
    at_least,
    at_most,
    bijection,
    cardinality,
    coexist,
    count_bounds,
    count_objective,
    exactly,
    implies,
    licm_dedup,
    licm_difference,
    licm_having_count,
    licm_intersect,
    licm_join,
    licm_product,
    licm_project,
    licm_rename,
    licm_select,
    licm_union,
    linear_sum,
    minmax_bounds,
    mutually_exclusive,
    objective_bounds,
    sum_bounds,
    sum_objective,
)
from repro.engine import ListSink, SolveSession, Telemetry
from repro.errors import (
    AnonymizationError,
    ConstraintError,
    InfeasibleError,
    ModelError,
    QueryError,
    ReproError,
    SamplingError,
    SchemaError,
    SolverError,
)
from repro.solver import Solution, SolverOptions

__version__ = "1.0.0"

__all__ = [
    "AggregateBounds",
    "AnonymizationError",
    "BoolVar",
    "PriorModel",
    "avg_bounds",
    "expected_value",
    "extend_assignment",
    "group_count_bounds",
    "tail_bounds",
    "ConstraintError",
    "InfeasibleError",
    "LICMModel",
    "LICMRelation",
    "LinearConstraint",
    "LinearExpr",
    "ModelError",
    "QueryError",
    "ReproError",
    "ListSink",
    "SamplingError",
    "SchemaError",
    "Solution",
    "SolveSession",
    "SolverError",
    "SolverOptions",
    "Telemetry",
    "at_least",
    "at_most",
    "bijection",
    "cardinality",
    "coexist",
    "count_bounds",
    "count_objective",
    "exactly",
    "implies",
    "licm_dedup",
    "licm_difference",
    "licm_having_count",
    "licm_intersect",
    "licm_join",
    "licm_product",
    "licm_project",
    "licm_rename",
    "licm_select",
    "licm_union",
    "linear_sum",
    "minmax_bounds",
    "mutually_exclusive",
    "objective_bounds",
    "sum_bounds",
    "sum_objective",
    "__version__",
]
