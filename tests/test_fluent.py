"""The fluent query builder produces the same plans as hand-built IR."""

import pytest

from repro.errors import QueryError
from repro.queries.fluent import Q, Query
from repro.relational.predicates import Between, Compare
from repro.relational.query import (
    CountStar,
    HavingCount,
    Intersect,
    NaturalJoin,
    Project,
    Scan,
    Select,
    SumAttr,
    Union,
    evaluate,
)
from repro.relational.relation import Database, Relation


@pytest.fixture
def db():
    return Database(
        [
            Relation("TRANS", ["TID", "Location"], [("T1", 1), ("T2", 9)]),
            Relation(
                "TRANSITEM",
                ["TID", "Item"],
                [("T1", "beer"), ("T1", "wine"), ("T2", "beer")],
            ),
        ]
    )


def test_scan_where_project_count(db):
    plan = Q.scan("TRANS").where(Between("Location", 0, 5)).project("TID").count()
    assert isinstance(plan, CountStar)
    assert evaluate(plan, db) == 1


def test_join_and_having(db):
    plan = (
        Q.scan("TRANS")
        .join(Q.scan("TRANSITEM"))
        .having_count("TID", ">=", 2)
        .count()
    )
    assert evaluate(plan, db) == 1  # only T1 has two items


def test_having_count_accepts_list(db):
    query = Q.scan("TRANSITEM").having_count(["TID"], ">=", 1)
    assert isinstance(query.plan, HavingCount)
    assert query.plan.group_by == ("TID",)


def test_set_operators(db):
    beer = Q.scan("TRANSITEM").where(Compare("Item", "==", "beer")).project("TID")
    wine = Q.scan("TRANSITEM").where(Compare("Item", "==", "wine")).project("TID")
    assert evaluate(beer.intersect(wine).count(), db) == 1
    assert evaluate(beer.union(wine).count(), db) == 2
    assert evaluate(beer.difference(wine).count(), db) == 1
    assert isinstance(beer.union(wine).plan, Union)
    assert isinstance(beer.intersect(wine).plan, Intersect)


def test_product_and_rename(db):
    renamed = Q.scan("TRANSITEM").rename(TID="TID2", Item="Item2")
    plan = Q.scan("TRANS").product(renamed).count()
    assert evaluate(plan, db) == 6


def test_sum_terminal(db):
    priced = Database(
        [Relation("P", ["Item", "Price"], [("beer", 5), ("wine", 9)])]
    )
    plan = Q.scan("P").sum("Price")
    assert isinstance(plan, SumAttr)
    assert evaluate(plan, priced) == 14


def test_accepts_raw_plan_nodes(db):
    plan = Q.scan("TRANS").join(Scan("TRANSITEM")).count()
    assert evaluate(plan, db) == 3


def test_rejects_garbage_operand():
    with pytest.raises(QueryError):
        Q.scan("A").join(42)


def test_immutability():
    base = Q.scan("TRANS")
    filtered = base.where(Compare("Location", "<", 5))
    assert base.plan is not filtered.plan
    assert isinstance(base.plan, Scan)


def test_explain(db):
    text = Q.scan("TRANS").where(Compare("Location", "<", 5)).explain()
    assert "Select" in text and "Scan(TRANS)" in text


def test_fluent_plan_works_on_licm():
    """The same fluent plan runs through the LICM evaluator."""
    from repro.core import LICMModel, count_bounds
    from repro.queries.licm_eval import evaluate_licm

    model = LICMModel()
    rel = model.relation("R", ["TID", "Item"])
    rel.insert(("T1", "beer"))
    rel.insert_maybe(("T1", "wine"))
    plan = Q.scan("R").project("TID")
    result = evaluate_licm(plan.plan, {"R": rel})
    bounds = count_bounds(result)
    assert (bounds.lower, bounds.upper) == (1, 1)
