"""LICM translations of the relational operators (Section IV-B).

Each operator consumes LICM relations bound to one model and produces a new
LICM relation in the same model, appending lineage variables and constraints
to the shared store.  The translations are *deterministic* in the paper's
sense: given an assignment to the input variables, exactly one assignment of
the output variables satisfies the added constraints — which is what makes
instantiation commute with query evaluation.

The existence-combination logic is factored into two tiny kernels:

* :func:`and_ext` — conjunction of two Ext values (intersection, product,
  join; Algorithms 2 and 3, including all the certain/maybe special cases).
* :func:`or_ext` — disjunction of many Ext values (projection / duplicate
  elimination; Algorithm 1, including Example 7's single-variable reuse
  optimization).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.database import LICMModel
from repro.core.linexpr import linear_sum
from repro.core.relation import Ext, LICMRelation, is_certain
from repro.core.variables import BoolVar
from repro.errors import QueryError, SchemaError
from repro.relational.predicates import Predicate


def and_ext(model: LICMModel, left: Ext, right: Ext) -> Ext:
    """Ext of a tuple that exists iff both inputs exist (Algorithms 2/3).

    Cases mirror the paper: equal Ext values or one certain side collapse
    without new variables; only two *distinct* maybe-variables require a
    fresh lineage variable ``b`` with ``b <= bi``, ``b <= bj``,
    ``b >= bi + bj - 1``.
    """
    if is_certain(left):
        return right
    if is_certain(right):
        return left
    if left == right:
        return left
    b = model.new_var()
    constraints = [
        model.add(b - left <= 0),
        model.add(b - right <= 0),
        model.add(b - left - right >= -1),
    ]
    model.register_lineage(b, [left, right], constraints)
    return b


def or_ext(model: LICMModel, exts: Sequence[Ext]) -> Ext:
    """Ext of a tuple that exists iff any input exists (Algorithm 1).

    If any contributing tuple is certain the result is certain; a single
    distinct variable is reused directly (the T3 optimization in Example 7);
    otherwise a fresh ``b`` gets ``b >= bj`` for each input and
    ``b <= sum(bj)``.
    """
    if not exts:
        raise QueryError("or_ext requires at least one Ext value")
    variables: list[BoolVar] = []
    seen: set[BoolVar] = set()
    for ext in exts:
        if is_certain(ext):
            return 1
        if ext not in seen:
            seen.add(ext)
            variables.append(ext)
    if len(variables) == 1:
        return variables[0]
    b = model.new_var()
    constraints = [model.add(b - var >= 0) for var in variables]
    constraints.append(model.add(b - linear_sum(variables) <= 0))
    model.register_lineage(b, variables, constraints)
    return b


def licm_select(relation: LICMRelation, predicate: Predicate) -> LICMRelation:
    """σ: keep rows satisfying the predicate; the constraint set is untouched.

    Constraints over dropped tuples become irrelevant; as the paper notes,
    they "can be dropped, or allowed to remain: the solver will eliminate
    them later" — pruning (``repro.core.pruning``) is that elimination.
    """
    model = relation.model
    fn = predicate.compile(relation.position)
    out = model.derived(relation.attributes, f"select({relation.name})")
    for row in relation.rows:
        if fn(row.values):
            out.insert(row.values, row.ext)
    return out


def licm_project(relation: LICMRelation, attributes: Sequence[str]) -> LICMRelation:
    """π with set semantics — Algorithm 1 generalized to any attribute list.

    Rows are grouped by their projected values; each group's output Ext is
    the disjunction of the group's Ext values.
    """
    model = relation.model
    positions = [relation.position(a) for a in attributes]
    groups: dict[tuple, list[Ext]] = defaultdict(list)
    order: list[tuple] = []
    for row in relation.rows:
        key = tuple(row.values[p] for p in positions)
        if key not in groups:
            order.append(key)
        groups[key].append(row.ext)
    out = model.derived(attributes, f"project({relation.name})")
    for key in order:
        out.insert(key, or_ext(model, groups[key]))
    return out


def licm_dedup(relation: LICMRelation) -> LICMRelation:
    """Duplicate elimination = projection onto the full schema."""
    return licm_project(relation, relation.attributes)


def licm_intersect(left: LICMRelation, right: LICMRelation) -> LICMRelation:
    """∩ — Algorithm 2: a tuple survives iff it exists in both inputs."""
    model = left.model
    model.check_owns(left)
    model.check_owns(right)
    if left.attributes != right.attributes:
        raise SchemaError(
            f"intersection requires identical schemas, got "
            f"{list(left.attributes)} vs {list(right.attributes)}"
        )
    right_by_values: dict[tuple, list[Ext]] = defaultdict(list)
    for row in right.rows:
        right_by_values[row.values].append(row.ext)
    out = model.derived(left.attributes, f"({left.name} ∩ {right.name})")
    emitted: set[tuple] = set()
    for row in left.rows:
        matches = right_by_values.get(row.values)
        if not matches or row.values in emitted:
            continue
        emitted.add(row.values)
        # A value-tuple may occur several times on either side; it is in the
        # intersection when it exists on the left AND on the right, where
        # each side's existence is the OR of its copies.
        left_copies = [r.ext for r in left.rows if r.values == row.values]
        left_ext = left_copies[0] if len(left_copies) == 1 else or_ext(model, left_copies)
        right_ext = matches[0] if len(matches) == 1 else or_ext(model, matches)
        out.insert(row.values, and_ext(model, left_ext, right_ext))
    return out


def licm_union(left: LICMRelation, right: LICMRelation) -> LICMRelation:
    """∪ with set semantics (extension; not in the paper's conjunctive core).

    A tuple exists iff it exists in either input — the disjunction kernel
    applies directly, so the operator stays linear and deterministic.
    """
    model = left.model
    model.check_owns(left)
    model.check_owns(right)
    if left.attributes != right.attributes:
        raise SchemaError("union requires identical schemas")
    groups: dict[tuple, list[Ext]] = defaultdict(list)
    order: list[tuple] = []
    for row in list(left.rows) + list(right.rows):
        if row.values not in groups:
            order.append(row.values)
        groups[row.values].append(row.ext)
    out = model.derived(left.attributes, f"({left.name} ∪ {right.name})")
    for values in order:
        out.insert(values, or_ext(model, groups[values]))
    return out


def licm_difference(left: LICMRelation, right: LICMRelation) -> LICMRelation:
    """Set difference (extension): exists on the left AND NOT on the right.

    ``b = bl AND NOT br`` stays linear: ``b <= bl``, ``b <= 1 - br``,
    ``b >= bl - br``.  Deterministic like the core operators.
    """
    model = left.model
    model.check_owns(left)
    model.check_owns(right)
    if left.attributes != right.attributes:
        raise SchemaError("difference requires identical schemas")
    right_groups: dict[tuple, list[Ext]] = defaultdict(list)
    for row in right.rows:
        right_groups[row.values].append(row.ext)
    dedup_left = licm_dedup(left)
    out = model.derived(left.attributes, f"({left.name} - {right.name})")
    for row in dedup_left.rows:
        matches = right_groups.get(row.values)
        if not matches:
            out.insert(row.values, row.ext)
            continue
        right_ext = matches[0] if len(matches) == 1 else or_ext(model, matches)
        if is_certain(right_ext):
            continue  # always removed
        if is_certain(row.ext):
            # exists iff right tuple absent: b = 1 - br
            b = model.new_var()
            constraints = [model.add((b + right_ext).eq(1))]
            model.register_lineage(b, [right_ext], constraints)
            out.insert(row.values, b)
            continue
        b = model.new_var()
        constraints = [
            model.add(b - row.ext <= 0),
            model.add(b + right_ext <= 1),
            model.add(b - row.ext + right_ext >= 0),
        ]
        model.register_lineage(b, [row.ext, right_ext], constraints)
        out.insert(row.values, b)
    return out


def licm_rename(relation: LICMRelation, mapping: dict[str, str]) -> LICMRelation:
    """ρ: rename attributes; rows and constraints are shared unchanged."""
    model = relation.model
    attributes = [mapping.get(a, a) for a in relation.attributes]
    out = model.derived(attributes, f"rename({relation.name})")
    for row in relation.rows:
        out.insert(row.values, row.ext)
    return out


def licm_product(left: LICMRelation, right: LICMRelation) -> LICMRelation:
    """× — Algorithm 3: a pair exists iff both constituents exist."""
    model = left.model
    model.check_owns(left)
    model.check_owns(right)
    clash = set(left.attributes) & set(right.attributes)
    if clash:
        raise SchemaError(
            f"product attribute clash on {sorted(clash)}; rename one side first"
        )
    out = model.derived(
        tuple(left.attributes) + tuple(right.attributes),
        f"({left.name} × {right.name})",
    )
    for lrow in left.rows:
        for rrow in right.rows:
            out.insert(lrow.values + rrow.values, and_ext(model, lrow.ext, rrow.ext))
    return out


def licm_join(left: LICMRelation, right: LICMRelation) -> LICMRelation:
    """⋈ natural join on shared attributes, built as a hash join.

    The paper defines join as product + selection + projection; this direct
    implementation produces the identical relation and constraints while
    only materializing matching pairs (the efficient operator the paper
    alludes to).
    """
    model = left.model
    model.check_owns(left)
    model.check_owns(right)
    shared = [a for a in left.attributes if a in set(right.attributes)]
    if not shared:
        return licm_product(left, right)
    left_pos = [left.position(a) for a in shared]
    right_pos = [right.position(a) for a in shared]
    right_rest = [
        i for i, a in enumerate(right.attributes) if a not in set(shared)
    ]
    out_attrs = tuple(left.attributes) + tuple(right.attributes[i] for i in right_rest)
    buckets: dict[tuple, list] = defaultdict(list)
    for rrow in right.rows:
        buckets[tuple(rrow.values[p] for p in right_pos)].append(rrow)
    out = model.derived(out_attrs, f"({left.name} ⋈ {right.name})")
    for lrow in left.rows:
        key = tuple(lrow.values[p] for p in left_pos)
        for rrow in buckets.get(key, ()):
            values = lrow.values + tuple(rrow.values[i] for i in right_rest)
            out.insert(values, and_ext(model, lrow.ext, rrow.ext))
    return out
