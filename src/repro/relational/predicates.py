"""Predicates over named attributes, shared by both query engines.

A :class:`Predicate` is symbolic — it names attributes rather than
positions — and is *compiled* against a schema's positions into a fast
row-level function.  Both the deterministic engine and the LICM selection
operator (which filters rows while leaving constraints untouched, per
Section IV-B) use the same compiled form.
"""

from __future__ import annotations

import operator
from typing import Callable, Sequence

from repro.errors import QueryError

_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

RowFn = Callable[[tuple], bool]


class Predicate:
    """Base class; subclasses implement :meth:`compile`."""

    def compile(self, position_of: Callable[[str], int]) -> RowFn:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)


class Compare(Predicate):
    """``attribute op constant`` for op in ==, !=, <, <=, >, >=."""

    def __init__(self, attribute: str, op: str, value):
        if op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.attribute = attribute
        self.op = op
        self.value = value

    def compile(self, position_of) -> RowFn:
        pos = position_of(self.attribute)
        cmp = _COMPARATORS[self.op]
        value = self.value
        return lambda row: cmp(row[pos], value)

    def __repr__(self) -> str:
        return f"({self.attribute} {self.op} {self.value!r})"


class Between(Predicate):
    """``lo <= attribute <= hi`` — the paper's range predicates (Pa, Pb, Pc)."""

    def __init__(self, attribute: str, lo, hi):
        self.attribute = attribute
        self.lo = lo
        self.hi = hi

    def compile(self, position_of) -> RowFn:
        pos = position_of(self.attribute)
        lo, hi = self.lo, self.hi
        return lambda row: lo <= row[pos] <= hi

    def __repr__(self) -> str:
        return f"({self.lo!r} <= {self.attribute} <= {self.hi!r})"


class InSet(Predicate):
    """``attribute IN {values}``."""

    def __init__(self, attribute: str, values):
        self.attribute = attribute
        self.values = frozenset(values)

    def compile(self, position_of) -> RowFn:
        pos = position_of(self.attribute)
        values = self.values
        return lambda row: row[pos] in values

    def __repr__(self) -> str:
        return f"({self.attribute} IN {sorted(self.values)!r})"


class And(Predicate):
    def __init__(self, parts: Sequence[Predicate]):
        self.parts = list(parts)

    def compile(self, position_of) -> RowFn:
        fns = [p.compile(position_of) for p in self.parts]
        return lambda row: all(fn(row) for fn in fns)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    def __init__(self, parts: Sequence[Predicate]):
        self.parts = list(parts)

    def compile(self, position_of) -> RowFn:
        fns = [p.compile(position_of) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    def __init__(self, inner: Predicate):
        self.inner = inner

    def compile(self, position_of) -> RowFn:
        fn = self.inner.compile(position_of)
        return lambda row: not fn(row)

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class TruePredicate(Predicate):
    """Matches every row; useful as a neutral element."""

    def compile(self, position_of) -> RowFn:
        return lambda row: True

    def __repr__(self) -> str:
        return "TRUE"


def attributes_of(predicate: Predicate) -> set[str]:
    """The attribute names a predicate reads (for pushdown decisions)."""
    if isinstance(predicate, (Compare, Between, InSet)):
        return {predicate.attribute}
    if isinstance(predicate, (And, Or)):
        out: set[str] = set()
        for part in predicate.parts:
            out |= attributes_of(part)
        return out
    if isinstance(predicate, Not):
        return attributes_of(predicate.inner)
    if isinstance(predicate, TruePredicate):
        return set()
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")
