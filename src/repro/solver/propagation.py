"""Bound propagation for binary programs.

Given 0/1 domains (possibly partially fixed), repeatedly tighten: for each
constraint, compute the minimum and maximum achievable activity under the
current domains; detect infeasibility; and fix any variable whose two values
are not both compatible with the constraint.  This is the workhorse of both
presolve and the branch-and-bound nodes — LICM constraints are short
("each constraint contains only a very small number of variables", as the
paper notes), so propagation is cheap and strong.

Input/output invariants (the contract the vectorized kernels hold parity
with, see :mod:`repro.solver.kernels`):

* Domains are encoded ``FREE=-1, ZERO=0, ONE=1``, one ``int`` per
  variable.  ``propagate`` never *un*-fixes: every non-``FREE`` entry of
  the input survives unchanged in the output (or the whole call returns
  ``None`` for proven infeasibility).  The input list itself is never
  mutated.
* The result is the **closure of a monotone forcing operator**: a
  variable is fixed exactly when one of its two values is incompatible
  with some row's min/max achievable activity under the current domains.
  Monotone closures are confluent, so the fixpoint is independent of
  worklist order — this is why the scalar worklist here and the
  full-sweep vectorized ``CompiledProblem.propagate`` agree bit-for-bit.
* Propagation reads only constraints, never the objective, so it is
  valid in any objective space (branch-and-bound runs it in the
  negated-max space used for minimization).
* ``None`` is returned **only** on proven infeasibility: some row cannot
  be satisfied by any completion of the current domains.  All arithmetic
  is exact integer arithmetic; there is no tolerance.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.solver.model import BIPProblem

FREE, ZERO, ONE = -1, 0, 1  # domain states


class CompiledConstraints:
    """Per-variable adjacency over a problem's constraints, built once."""

    def __init__(self, problem: BIPProblem):
        self.problem = problem
        self.by_var: list[list[int]] = [[] for _ in range(problem.num_vars)]
        for pos, constraint in enumerate(problem.constraints):
            for _, idx in constraint.terms:
                self.by_var[idx].append(pos)


def propagate(
    compiled: CompiledConstraints,
    domains: Sequence[int],
    dirty: Optional[Sequence[int]] = None,
) -> Optional[list[int]]:
    """Run bound propagation to fixpoint.

    :param domains: per-variable state, one of ``FREE``/``ZERO``/``ONE``.
    :param dirty: constraint positions to start from (default: all).
    :return: the tightened domain list, or ``None`` on conflict.
    """
    problem = compiled.problem
    state = list(domains)
    queue = deque(range(len(problem.constraints)) if dirty is None else dirty)
    queued = set(queue)

    def enqueue_var(idx: int) -> None:
        for pos in compiled.by_var[idx]:
            if pos not in queued:
                queued.add(pos)
                queue.append(pos)

    while queue:
        pos = queue.popleft()
        queued.discard(pos)
        constraint = problem.constraints[pos]
        lo = hi = 0
        for coef, idx in constraint.terms:
            value = state[idx]
            if value == FREE:
                if coef > 0:
                    hi += coef
                else:
                    lo += coef
            else:
                lo += coef * value
                hi += coef * value

        check_le = constraint.op in ("<=", "==")
        check_ge = constraint.op in (">=", "==")
        if check_le and lo > constraint.rhs:
            return None
        if check_ge and hi < constraint.rhs:
            return None

        for coef, idx in constraint.terms:
            if state[idx] != FREE:
                continue
            # Activity bounds if this variable took each value.
            lo0 = lo - min(coef, 0)
            hi0 = hi - max(coef, 0)
            lo1 = lo0 + coef
            hi1 = hi0 + coef
            zero_ok = not (check_le and lo0 > constraint.rhs) and not (
                check_ge and hi0 < constraint.rhs
            )
            one_ok = not (check_le and lo1 > constraint.rhs) and not (
                check_ge and hi1 < constraint.rhs
            )
            if not zero_ok and not one_ok:
                return None
            if zero_ok == one_ok:
                continue
            forced = ONE if one_ok else ZERO
            state[idx] = forced
            if coef > 0:
                if forced == ONE:
                    lo += coef
                else:
                    hi -= coef
            else:
                if forced == ONE:
                    hi += coef
                else:
                    lo -= coef
            enqueue_var(idx)
    return state
