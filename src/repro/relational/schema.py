"""Schemas for the deterministic relational engine.

This engine is the reproduction's stand-in for the paper's use of a
classical DBMS (Microsoft SQL Server) in the Monte Carlo baseline: it
evaluates queries over *certain* relations, one sampled possible world at a
time.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import SchemaError


class Schema:
    """An ordered list of attribute names."""

    __slots__ = ("attributes", "_positions")

    def __init__(self, attributes: Sequence[str]):
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attribute names in {list(attributes)}")
        self.attributes = attributes
        self._positions = {attr: i for i, attr in enumerate(attributes)}

    def position(self, attribute: str) -> int:
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"no attribute {attribute!r} in schema {list(self.attributes)}"
            ) from None

    def positions(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(a) for a in attributes)

    def project(self, attributes: Sequence[str]) -> "Schema":
        """Schema of a projection (validates attribute names)."""
        self.positions(attributes)
        return Schema(attributes)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a Cartesian product; name clashes raise SchemaError."""
        return Schema(self.attributes + other.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __eq__(self, other) -> bool:
        if isinstance(other, Schema):
            return self.attributes == other.attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        return f"Schema({list(self.attributes)})"
