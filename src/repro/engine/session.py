"""The shared solve engine: one session per model, reused across queries.

A :class:`SolveSession` owns the full ``model -> prune -> BIP normal form
-> solve(min) + solve(max) -> witness`` pipeline that every aggregate
bound in the repo needs, and layers on top of it:

* a canonical fingerprint of each pruned problem
  (:mod:`repro.engine.canonical`), so structurally repeated queries are
  recognised even though each evaluation allocates fresh lineage
  variables;
* a bounded LRU solve cache (:mod:`repro.engine.cache`) keyed by
  ``(fingerprint, sense)`` — the L1 tier — invalidated when non-lineage
  constraints are added to the model's store (lineage-only appends —
  i.e. answering more queries — keep the cache warm, which is what makes
  a Figure-5 k-sweep amortize its solves);
* optionally, a cross-process L2 tier (:mod:`repro.engine.l2cache`)
  shared by every worker pointed at the same SQLite file — pass
  ``l2_path``;
* dispatch of every ``(component, sense)`` solve unit through an
  :class:`~repro.engine.fabric.ExecutorFabric` — inline (serial),
  thread pool, or a pool of forked worker processes — one code path,
  three scheduling configurations;
* structured instrumentation (:mod:`repro.engine.telemetry`) replacing
  the hand-rolled ``perf_counter`` bookkeeping previously scattered over
  ``core/bounds.py``, ``queries/answer.py`` and the experiment harness.

``repro.core.bounds.objective_bounds`` and ``repro.queries.answer_licm``
remain as thin facades constructing a throwaway session, so existing
callers and their signatures are untouched.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.constraints import LinearConstraint
from repro.core.linexpr import LinearExpr
from repro.core.pruning import prune
from repro.engine.cache import CachedSolve, SolveCache
from repro.engine.canonical import CanonicalBIP, canonicalize
from repro.engine.fabric import (
    ExecutorFabric,
    InlineFabric,
    SolveUnit,
    ThreadFabric,
    UnitResult,
)
from repro.engine.telemetry import (
    CacheProbe,
    ProblemPrepared,
    SolveFinished,
    Stopwatch,
    Telemetry,
)
from repro.errors import EngineError, InfeasibleError
from repro.obs.export import global_registry
from repro.obs.tracer import current_tracer
from repro.solver.decompose import split_blocks
from repro.solver.model import from_licm
from repro.solver.result import Solution, SolverOptions

_SENSES = ("min", "max")

#: Bucket edges for the components-per-solve histogram (counts, not seconds).
_COMPONENT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class PreparedComponent:
    """One independent block of a decomposed problem.

    Shaped exactly like the monolithic ``(problem, dense, canonical)``
    triple so a component rides the same cache/solve path: ``problem`` is
    the block's own dense BIP, ``dense`` maps *model* variable indices to
    its solution positions, and ``canonical`` carries the block's own
    fingerprint — the per-component cache key.  Everything here is plain
    data, so a component crosses a process boundary intact.
    """

    problem: object
    dense: dict
    canonical: CanonicalBIP


@dataclass
class PreparedProblem:
    """A pruned, densified, canonicalized problem — ready to solve.

    Produced by :meth:`SolveSession.prepare`; its ``fingerprint`` is the
    dedup key the service scheduler coalesces identical in-flight requests
    on, *before* any solver work happens.  Hand it back to
    :meth:`SolveSession.solve_prepared` for the bounds.

    ``components`` holds the block-separable decomposition when the
    constraint graph splits (and decomposition is enabled): each entry
    solves and caches independently, and :meth:`SolveSession.solve_prepared`
    recombines the per-component optima additively.  Empty means
    monolithic.
    """

    problem: object
    dense: dict
    canonical: CanonicalBIP
    prune_stats: dict = field(default_factory=dict)
    prep_time: float = 0.0
    components: Tuple[PreparedComponent, ...] = ()

    @property
    def fingerprint(self) -> str:
        return self.canonical.fingerprint

    @property
    def decomposed(self) -> bool:
        return len(self.components) > 1


class SolveSession:
    """Reusable solve pipeline bound to one LICM model.

    :param model: the shared :class:`~repro.core.database.LICMModel`.
    :param options: solver options applied to every solve in the session.
    :param prune_method: ``'lineage'`` (default), ``'fixpoint'`` or
        ``'single_pass'`` — see :mod:`repro.core.pruning`.
    :param cache_size: L1 LRU capacity in solve outcomes; ``0`` disables.
    :param max_workers: ``> 1`` builds a thread fabric running the min and
        max directions (and per-component fan-out) concurrently; ``1`` is
        strictly serial.  Ignored when ``fabric`` is given.
    :param telemetry: a shared :class:`Telemetry`; a private one is
        created when omitted.
    :param executor: inject a pre-built thread executor (wrapped in a
        thread fabric; the session will not shut it down).
    :param fabric: inject a shared :class:`ExecutorFabric` — the service
        scheduler passes one process fabric to every session; the session
        will not close it.
    :param l2_path: SQLite file for the cross-process L2 solve cache;
        ``None`` (default) disables the L2 tier.
    """

    def __init__(
        self,
        model,
        options: Optional[SolverOptions] = None,
        prune_method: str = "lineage",
        cache_size: int = 128,
        max_workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        executor: Optional[Executor] = None,
        fabric: Optional[ExecutorFabric] = None,
        l2_path: Optional[str] = None,
    ):
        self.model = model
        self.options = options or SolverOptions()
        self.prune_method = prune_method
        self.cache = SolveCache(cache_size)
        self.max_workers = max_workers
        self.telemetry = telemetry or Telemetry()
        self.l2_path = l2_path
        self._external_fabric = fabric is not None
        if fabric is None:
            if executor is not None:
                fabric = ThreadFabric(max_workers, executor=executor)
            elif max_workers > 1:
                fabric = ThreadFabric(max_workers)
            else:
                fabric = InlineFabric()
        self.fabric = fabric
        self._closed = False
        self._seen_generation = model.constraints.generation
        self._seen_length = len(model.constraints)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "SolveSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the session-owned fabric (injected ones are kept).

        Idempotent: closing twice is a no-op.  Any solve attempted after
        the first ``close()`` raises :class:`~repro.errors.EngineError`.
        """
        if self._closed:
            return
        if not self._external_fabric:
            self.fabric.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def parallel(self) -> bool:
        return self.fabric.kind != "inline"

    # -- cache freshness ---------------------------------------------------
    def _ensure_fresh(self) -> None:
        """Invalidate the cache if non-lineage constraints were added.

        The store is append-only, so its generation counter equals its
        length.  Appends that are all registered operator lineage cannot
        change any previously fingerprinted pruned problem (lineage
        constraints are deterministic and sibling lineage is never part
        of another query's pruned BIP), so the cache stays warm across
        repeated query evaluations.  Any other append — a user
        correlation, a manual ``model.add`` — clears the cache.
        """
        if self._closed:
            raise EngineError(
                f"SolveSession for {self.model!r} is closed "
                "(close() was called; its fabric is shut down) — "
                "create a new session to keep solving"
            )
        store = self.model.constraints
        generation = store.generation
        if generation == self._seen_generation:
            return
        appended = generation - self._seen_generation
        new_length = len(store)
        lineage_only = new_length - self._seen_length == appended and all(
            self.model.is_lineage_constraint(store[pos])
            for pos in range(self._seen_length, new_length)
        )
        self._seen_generation = generation
        self._seen_length = new_length
        if lineage_only:
            return
        self.cache.clear()
        self.telemetry.count("cache_invalidations")
        self.telemetry.emit(CacheProbe("invalidate", size=0))

    # -- pipeline phases ---------------------------------------------------
    def _prepare(
        self,
        objective: LinearExpr,
        extra_constraints: Sequence[LinearConstraint],
        do_prune: bool,
        decompose: bool = False,
    ):
        """Prune + densify + canonicalize one objective. Returns
        ``(problem, dense, canonical, prune_stats, components)``."""
        with current_tracer().span("engine.prepare") as span:
            with self.telemetry.timer("prune"):
                extra = list(extra_constraints)
                if do_prune:
                    seeds = set(objective.coeffs)
                    for constraint in extra:
                        seeds.update(constraint.variables)
                    pruned = prune(
                        self.model.constraints, seeds, self.prune_method, model=self.model
                    )
                    constraints = pruned.constraints + extra
                    prune_stats = dict(pruned.stats)
                else:
                    constraints = list(self.model.constraints) + extra
                    seen = set(objective.coeffs)
                    for constraint in constraints:
                        seen.update(constraint.variables)
                    prune_stats = {
                        "variables_before": len(seen),
                        "constraints_before": len(constraints),
                        "variables_after": len(seen),
                        "constraints_after": len(constraints),
                    }
            with self.telemetry.timer("normalize"):
                names = {var.index: var.name for var in self.model.pool}
                problem, dense = from_licm(objective, constraints, names)
                canonical = canonicalize(objective, constraints)
            components: Tuple[PreparedComponent, ...] = ()
            if decompose and self.options.enable_decomposition:
                components = self._decompose(objective, constraints, names)
            span.set("fingerprint", canonical.fingerprint)
            for key, value in prune_stats.items():
                span.set(key, value)
        self.telemetry.emit(ProblemPrepared(canonical.fingerprint, **prune_stats))
        return problem, dense, canonical, prune_stats, components

    def _decompose(
        self,
        objective: LinearExpr,
        constraints: Sequence[LinearConstraint],
        names: dict,
    ) -> Tuple[PreparedComponent, ...]:
        """Split the pruned problem into connected components.

        Union-find over the LICM constraint scopes plus the objective's
        support (objective-only variables form the trailing *free* block —
        solved in closed form).  Each component is normalized and
        fingerprinted independently, so the solve cache hits per block: a
        repeat query touching one changed anonymization group re-solves
        only that block.  Returns ``()`` when the problem does not
        separate (single component, or a degenerate empty-scope
        constraint), which keeps the monolithic path byte-identical.
        """
        scopes = [constraint.variables for constraint in constraints]
        if any(not scope for scope in scopes):
            return ()
        with current_tracer().span("engine.decompose") as span:
            blocks = split_blocks(scopes, variables=objective.coeffs)
            span.set("components", max(len(blocks), 1))
            self._observe_components(max(len(blocks), 1))
            if len(blocks) <= 1:
                return ()
            components = []
            for block in blocks:
                sub_objective = LinearExpr(
                    {
                        index: objective.coeffs[index]
                        for index in block.variables
                        if index in objective.coeffs
                    },
                    0,
                )
                sub_constraints = [constraints[cid] for cid in block.constraint_ids]
                sub_problem, sub_dense = from_licm(
                    sub_objective, sub_constraints, names
                )
                components.append(
                    PreparedComponent(
                        problem=sub_problem,
                        dense=sub_dense,
                        canonical=canonicalize(sub_objective, sub_constraints),
                    )
                )
            span.set("largest_vars", max(c.problem.num_vars for c in components))
            self.telemetry.count("decomposed_prepares")
        return tuple(components)

    def _observe_components(self, count: int) -> None:
        """The always-on components-per-solve distribution (+ exemplar)."""
        span = current_tracer().current()
        trace_id = getattr(span, "trace_id", "") if span is not None else ""
        global_registry().histogram(
            "engine_components_per_solve",
            "Connected components per prepared engine BIP (1 = inseparable)",
            buckets=_COMPONENT_BUCKETS,
        ).observe(
            float(count),
            exemplar={"trace_id": trace_id} if trace_id else None,
        )

    # -- unit dispatch -----------------------------------------------------
    def _l1_probe(
        self,
        canonical: CanonicalBIP,
        sense: str,
        component: Optional[int],
        parent_span,
    ) -> Optional[CachedSolve]:
        """One L1 lookup, with its telemetry.  ``None`` means miss."""
        entry = self.cache.get((canonical.fingerprint, sense))
        if entry is None:
            self.telemetry.count("cache_misses")
            self.telemetry.emit(
                CacheProbe("miss", canonical.fingerprint, len(self.cache))
            )
            return None
        self.telemetry.count("cache_hits")
        self.telemetry.emit(CacheProbe("hit", canonical.fingerprint, len(self.cache)))
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(f"engine.solve.{sense}", parent=parent_span) as span:
                if component is not None:
                    span.set("component", component)
                span.set("cached", True).set("status", entry.status)
                span.set("objective", entry.objective).set("nodes", entry.nodes)
                span.set("backend", entry.backend)
        self.telemetry.emit(
            SolveFinished(
                sense=sense,
                status=entry.status,
                objective=entry.objective,
                nodes=0,
                seconds=0.0,
                backend=entry.backend,
                fingerprint=canonical.fingerprint,
                cached=True,
            )
        )
        return entry

    def _unit(
        self,
        problem,
        dense: dict,
        canonical: CanonicalBIP,
        sense: str,
        component: Optional[int],
        options: Optional[SolverOptions],
        parent_span=None,
    ) -> SolveUnit:
        tracer = current_tracer()
        span = parent_span if parent_span is not None else tracer.current()
        trace_id = getattr(span, "trace_id", "") if span is not None else ""
        return SolveUnit(
            problem=problem,
            sense=sense,
            fingerprint=canonical.fingerprint,
            var_order=tuple(canonical.var_order),
            dense=dense,
            options=options or self.options,
            closed_form_ok=component is not None,
            # A solve under per-call options (a request deadline) is not
            # authoritative for the fingerprint — see the cache guards.
            authoritative=options is None,
            component=component,
            l2_path=self.l2_path,
            # Seed the worker-side recording tracer: repatriated spans
            # and exemplars must carry the *requesting* trace's id.
            trace_id=trace_id or None,
            sample_every=tracer.sample_every or 64,
        )

    def _collect(
        self,
        result: UnitResult,
        canonical: CanonicalBIP,
        sense: str,
        options: Optional[SolverOptions],
        parent_span,
    ) -> Tuple[CachedSolve, bool, float, bool]:
        """Fold one :class:`UnitResult` back into session state.

        Runs on the submitting thread: L1 write-through (guarded),
        telemetry, the always-on metrics, adoption of any span records
        shipped home from a worker process, and replay of the worker's
        metrics delta into this process's global registry.  Returns
        ``(entry, cached, seconds, l2_hit)``.
        """
        tracer = current_tracer()
        if result.metrics_delta:
            global_registry().merge_delta(result.metrics_delta)
        if result.spans and tracer.enabled:
            tracer.ingest(result.spans, parent=parent_span)
        entry = result.to_cached()
        # A solve truncated by per-call options (a request deadline) is not
        # authoritative for the fingerprint: only cache it when optimal, so
        # a degraded request never poisons later full-budget answers.
        if options is None or entry.status == "optimal":
            self.cache.put((canonical.fingerprint, sense), entry)
            self.telemetry.emit(
                CacheProbe("store", canonical.fingerprint, len(self.cache))
            )
        self.telemetry.record(f"solve_{sense}", result.solve_time)
        self.telemetry.count("solver_nodes", result.nodes)
        registry = global_registry()
        registry.counter(
            "engine_fabric_units_total",
            "Solve units executed, by fabric kind",
        ).inc(labels={"fabric": self.fabric.kind})
        if self.l2_path is not None:
            if result.l2_hit:
                self.telemetry.count("l2_hits")
                registry.counter(
                    "engine_l2_hits_total", "Cross-process L2 solve cache hits"
                ).inc()
            else:
                self.telemetry.count("l2_misses")
                registry.counter(
                    "engine_l2_misses_total", "Cross-process L2 solve cache misses"
                ).inc()
            if result.l2_stored:
                self.telemetry.count("l2_writes")
                registry.counter(
                    "engine_l2_writes_total", "Cross-process L2 solve cache writes"
                ).inc()
        if not result.l2_hit:
            # Always-on distribution of real solve walls (cache hits
            # excluded), exemplar-linked to the request trace so a slow
            # bucket names a specific span tree.
            span = parent_span if parent_span is not None else tracer.current()
            trace_id = getattr(span, "trace_id", "") if span is not None else ""
            registry.histogram(
                "engine_solve_seconds", "Wall seconds per engine BIP solve direction"
            ).observe(
                result.solve_time,
                labels={"sense": sense, "backend": result.backend or "unknown"},
                exemplar={"trace_id": trace_id} if trace_id else None,
            )
        self.telemetry.emit(
            SolveFinished(
                sense=sense,
                status=entry.status,
                objective=entry.objective,
                nodes=result.nodes,
                seconds=result.solve_time,
                backend=entry.backend,
                fingerprint=canonical.fingerprint,
                cached=False,
            )
        )
        return entry, False, result.solve_time, result.l2_hit

    def _solve_tasks(
        self,
        tasks: Sequence[Tuple[object, dict, CanonicalBIP, str, Optional[int]]],
        options: Optional[SolverOptions],
    ) -> List[Tuple[CachedSolve, bool, float, bool]]:
        """Run ``(problem, dense, canonical, sense, component)`` tasks.

        The one dispatch path for every fabric.  Serial (inline) fabrics
        process tasks strictly in order — a later task whose fingerprint
        was just stored by an earlier one hits L1, exactly like the
        historical serial engine.  Parallel fabrics probe L1 for the
        whole batch first, then submit every miss and collect as futures
        complete; both directions (and all components) are in flight at
        once.
        """
        parent_span = current_tracer().current()
        outcomes: List[Optional[Tuple[CachedSolve, bool, float, bool]]] = [None] * len(
            tasks
        )
        if not self.parallel:
            for i, (problem, dense, canonical, sense, component) in enumerate(tasks):
                hit = self._l1_probe(canonical, sense, component, parent_span)
                if hit is not None:
                    outcomes[i] = (hit, True, 0.0, False)
                    continue
                unit = self._unit(
                    problem, dense, canonical, sense, component, options, parent_span
                )
                result = self.fabric.submit_unit(unit, parent_span).result()
                outcomes[i] = self._collect(result, canonical, sense, options, parent_span)
            return outcomes  # type: ignore[return-value]
        pending = []
        for i, (problem, dense, canonical, sense, component) in enumerate(tasks):
            hit = self._l1_probe(canonical, sense, component, parent_span)
            if hit is not None:
                outcomes[i] = (hit, True, 0.0, False)
                continue
            unit = self._unit(
                problem, dense, canonical, sense, component, options, parent_span
            )
            pending.append(
                (i, canonical, sense, self.fabric.submit_unit(unit, parent_span))
            )
        for i, canonical, sense, future in pending:
            outcomes[i] = self._collect(
                future.result(), canonical, sense, options, parent_span
            )
        return outcomes  # type: ignore[return-value]

    # -- public API --------------------------------------------------------
    def solve_units(
        self,
        tasks: Sequence[Tuple[object, dict, CanonicalBIP, str, Optional[int]]],
        options: Optional[SolverOptions] = None,
    ) -> List[Tuple[CachedSolve, bool, float, bool]]:
        """Dispatch raw ``(problem, dense, canonical, sense, component)``
        units through the session's fabric and caches.

        The escalation entry point for the tiered answerer
        (:mod:`repro.estimator`): individual disagreeing components go to
        the exact solver without re-running the whole prepared problem.
        Identical cache/L2 semantics to :meth:`solve_prepared` — entries
        under per-call ``options`` are cached only when optimal.  Returns
        one ``(entry, cached, seconds, l2_hit)`` tuple per task, in order.
        """
        self._ensure_fresh()
        return self._solve_tasks(list(tasks), options)

    def prepare(
        self,
        objective: LinearExpr,
        extra_constraints: Sequence[LinearConstraint] = (),
        do_prune: bool = True,
    ) -> PreparedProblem:
        """Run the prune/normalize/canonicalize phases without solving.

        The returned :class:`PreparedProblem` carries the canonical
        fingerprint, so callers (the service scheduler's in-flight dedup)
        can recognise a structurally identical problem *before* paying for
        the BIP solves, then finish via :meth:`solve_prepared`.
        """
        self._ensure_fresh()
        prep = Stopwatch()
        problem, dense, canonical, prune_stats, components = self._prepare(
            objective, extra_constraints, do_prune, decompose=True
        )
        return PreparedProblem(
            problem=problem,
            dense=dense,
            canonical=canonical,
            prune_stats=prune_stats,
            prep_time=prep.stop(),
            components=components,
        )

    def solve_prepared(
        self,
        prepared: PreparedProblem,
        options: Optional[SolverOptions] = None,
    ):
        """Both directions of an already-prepared problem.

        ``options`` overrides the session's solver options for this call
        only (the service layer passes a deadline-carrying copy); results
        from overridden solves enter the caches only when optimal.  Returns
        :class:`~repro.core.bounds.AggregateBounds`.

        A decomposed preparation (``prepared.components``) dispatches
        every ``(component, sense)`` pair through the fabric and
        recombines the per-component optima additively; deadline options
        and cancellation apply to each component solve.
        """
        from repro.core.bounds import AggregateBounds

        self._ensure_fresh()
        if prepared.decomposed:
            return self._solve_prepared_decomposed(prepared, options)
        problem, dense, canonical = prepared.problem, prepared.dense, prepared.canonical

        results = self._solve_tasks(
            [(problem, dense, canonical, sense, None) for sense in _SENSES], options
        )
        outcomes = dict(zip(_SENSES, results))

        for entry, _, _, _ in outcomes.values():
            if entry.status == "infeasible":
                raise InfeasibleError("the LICM constraints admit no possible world")

        (min_entry, min_cached, min_time, min_l2) = outcomes["min"]
        (max_entry, max_cached, max_time, max_l2) = outcomes["max"]

        def witness(entry: CachedSolve):
            if entry.x_canonical is None:
                return None
            return canonical.witness(entry.x_canonical)

        exact = min_entry.status == "optimal" and max_entry.status == "optimal"
        return AggregateBounds(
            lower=min_entry.objective,
            upper=max_entry.objective,
            lower_witness=witness(min_entry),
            upper_witness=witness(max_entry),
            exact=exact,
            lower_bound_proven=min_entry.bound,
            upper_bound_proven=max_entry.bound,
            stats={
                **prepared.prune_stats,
                "problem_variables": problem.num_vars,
                "problem_constraints": problem.num_constraints,
                "prep_time": prepared.prep_time,
                "solve_time": min_time + max_time,
                "nodes": min_entry.nodes + max_entry.nodes,
                "backend": max_entry.backend,
                "cache_hits": int(min_cached) + int(max_cached),
                "l2_hits": int(min_l2) + int(max_l2),
                "components": 1,
                "fingerprint": canonical.fingerprint,
            },
        )

    def _solve_prepared_decomposed(
        self,
        prepared: PreparedProblem,
        options: Optional[SolverOptions] = None,
    ):
        """Both directions of a block-separable preparation.

        Every ``(component, sense)`` pair runs through the per-component
        cache (its own canonical fingerprint) and the recombination is
        additive: ``min Σ = Σ min`` and ``max Σ = Σ max`` because no
        constraint crosses components, an infeasible component proves
        global infeasibility, and per-component dual bounds sum to a
        valid global bound.  ``cache_hits`` stays 0..2 (a direction
        counts as cached only when *every* component entry was); the raw
        per-component count is ``stats['component_cache_hits']``.
        """
        from repro.core.bounds import AggregateBounds

        components = prepared.components
        tasks = [(sense, c) for sense in _SENSES for c in range(len(components))]
        results = self._solve_tasks(
            [
                (
                    components[c].problem,
                    components[c].dense,
                    components[c].canonical,
                    sense,
                    c,
                )
                for sense, c in tasks
            ],
            options,
        )
        outcomes = dict(zip(tasks, results))

        for entry, _, _, _ in outcomes.values():
            if entry.status == "infeasible":
                raise InfeasibleError("the LICM constraints admit no possible world")

        constant = prepared.problem.objective_constant

        def side(sense: str):
            entries = [outcomes[(sense, c)][0] for c in range(len(components))]
            all_cached = all(outcomes[(sense, c)][1] for c in range(len(components)))
            hits = sum(int(outcomes[(sense, c)][1]) for c in range(len(components)))
            seconds = sum(outcomes[(sense, c)][2] for c in range(len(components)))
            l2_hits = sum(int(outcomes[(sense, c)][3]) for c in range(len(components)))
            objective = None
            if all(entry.objective is not None for entry in entries):
                objective = sum(entry.objective for entry in entries) + constant
            bound = None
            if all(entry.bound is not None for entry in entries):
                bound = sum(entry.bound for entry in entries) + constant
            witness = None
            if all(entry.x_canonical is not None for entry in entries):
                witness = {}
                for component, entry in zip(components, entries):
                    witness.update(component.canonical.witness(entry.x_canonical))
            return {
                "entries": entries,
                "objective": objective,
                "bound": bound,
                "witness": witness,
                "exact": all(entry.status == "optimal" for entry in entries),
                "nodes": sum(entry.nodes for entry in entries),
                "cached": all_cached,
                "hits": hits,
                "l2_hits": l2_hits,
                "seconds": seconds,
            }

        low, high = side("min"), side("max")
        backend = next(
            (
                entry.backend
                for entry in high["entries"]
                if entry.backend and entry.backend != "closed-form"
            ),
            "closed-form",
        )
        return AggregateBounds(
            lower=low["objective"],
            upper=high["objective"],
            lower_witness=low["witness"],
            upper_witness=high["witness"],
            exact=low["exact"] and high["exact"],
            lower_bound_proven=low["bound"],
            upper_bound_proven=high["bound"],
            stats={
                **prepared.prune_stats,
                "problem_variables": prepared.problem.num_vars,
                "problem_constraints": prepared.problem.num_constraints,
                "prep_time": prepared.prep_time,
                "solve_time": low["seconds"] + high["seconds"],
                "nodes": low["nodes"] + high["nodes"],
                "backend": backend,
                "cache_hits": int(low["cached"]) + int(high["cached"]),
                "component_cache_hits": low["hits"] + high["hits"],
                "l2_hits": low["l2_hits"] + high["l2_hits"],
                "components": len(components),
                "fingerprint": prepared.canonical.fingerprint,
            },
        )

    def bounds(
        self,
        objective: LinearExpr,
        extra_constraints: Sequence[LinearConstraint] = (),
        do_prune: bool = True,
        options: Optional[SolverOptions] = None,
    ):
        """Min/max of a linear objective over all possible worlds.

        The engine-native equivalent of
        :func:`repro.core.bounds.objective_bounds`: both directions go
        through the cache, and on a cold cache they run concurrently when
        the session is parallel.  Equivalent to :meth:`prepare` followed
        by :meth:`solve_prepared`.  Returns
        :class:`~repro.core.bounds.AggregateBounds`.
        """
        return self.solve_prepared(
            self.prepare(objective, extra_constraints, do_prune), options=options
        )

    def optimize(
        self,
        objective: LinearExpr,
        sense: str,
        extra_constraints: Sequence[LinearConstraint] = (),
        options: Optional[SolverOptions] = None,
    ) -> Tuple[Solution, dict]:
        """One direction with query-local side constraints.

        Returns ``(solution, dense)`` where ``dense`` maps model variable
        indices to positions in ``solution.x`` — the contract the AVG
        (Dinkelbach) and MIN/MAX (feasibility-probe) paths rely on.
        """
        self._ensure_fresh()
        problem, dense, canonical, _, _ = self._prepare(
            objective, extra_constraints, do_prune=True
        )
        ((entry, _, _, _),) = self._solve_tasks(
            [(problem, dense, canonical, sense, None)], options
        )
        x = None
        if entry.x_canonical is not None:
            x = [0] * problem.num_vars
            for c, value in enumerate(entry.x_canonical):
                x[dense[canonical.var_order[c]]] = int(value)
        solution = Solution(
            status=entry.status,
            objective=entry.objective,
            x=x,
            bound=entry.bound,
            nodes=entry.nodes,
            backend=entry.backend,
        )
        return solution, dense

    def feasible(
        self,
        extra_constraints: Iterable[LinearConstraint],
        options: Optional[SolverOptions] = None,
    ) -> bool:
        """Is there a valid world satisfying the extra constraints too?"""
        solution, _ = self.optimize(
            LinearExpr({}, 0), "max", list(extra_constraints), options=options
        )
        return solution.status != "infeasible"

    def map(self, fn, items):
        """Run ``fn`` over ``items``, on the fabric's workers when possible.

        Order-preserving; used for fan-out workloads (per-group bounds,
        MC per-world evaluation) that want to share the session's
        scheduling.  Process fabrics run this inline — arbitrary closures
        do not cross the process boundary; only solve units do.
        """
        return self.fabric.map(fn, items)

    def __repr__(self) -> str:
        mode = (
            f"{self.fabric.kind}(workers={self.fabric.workers})"
            if self.parallel
            else "serial"
        )
        return (
            f"SolveSession({self.model!r}, {mode}, cache={self.cache.stats['size']}/"
            f"{self.cache.maxsize})"
        )
