"""Extensions walk-through: priors, expected values, tail bounds, AVG.

The paper's Concluding Remarks pose an open problem — combine LICM's
possibilistic envelope with probabilistic priors over the binary
variables.  This example prices the Figure 2(c) uncertain transaction,
computes the exact [min, max] of the basket value, the expected value
under two different priors, tail bounds, and the exact AVG range via
Dinkelbach iteration.

Run:  python examples/priors_and_avg.py
"""

from repro import LICMModel, cardinality, sum_bounds
from repro.core.bounds import avg_bounds
from repro.core.priors import PriorModel, expected_value, tail_bounds
from repro.core.aggregates import sum_objective

PRICES = {"Beer": 6, "Wine": 9, "Liquor": 12, "Shampoo": 3}


def build():
    model = LICMModel()
    basket = model.relation("BASKET", ["Item", "Price"])
    b1, b2, b3 = model.new_vars(3)
    basket.insert(("Beer", PRICES["Beer"]), ext=b1)
    basket.insert(("Wine", PRICES["Wine"]), ext=b2)
    basket.insert(("Liquor", PRICES["Liquor"]), ext=b3)
    basket.insert(("Shampoo", PRICES["Shampoo"]))
    model.add_all(cardinality([b1, b2, b3], 1, 2))  # 1 or 2 alcohol items
    return model, basket, (b1, b2, b3)


def main() -> None:
    model, basket, (b1, b2, b3) = build()
    print("Figure 2(c) with prices; 1 <= #alcohol items <= 2\n")

    exact = sum_bounds(basket, "Price")
    print(f"exact SUM(Price) range over all possible worlds: {exact}")

    uniform = PriorModel(model)  # every alternative equally likely
    objective = sum_objective(basket, "Price")
    print(f"E[SUM] under a uniform prior:    {expected_value(uniform, objective)}")

    skewed = PriorModel(model)
    skewed.set_probability(b1, 0.9)   # beer very likely
    skewed.set_probability(b3, 0.05)  # liquor unlikely
    print(f"E[SUM] under a skewed prior:     {expected_value(skewed, objective)}")

    tails = tail_bounds(uniform, objective, confidence=0.95)
    low, high = tails.interval
    print(
        f"95% tail interval (clipped to the exact envelope): "
        f"[{low:.2f}, {high:.2f}] within [{tails.lower}, {tails.upper}]"
    )

    avg = avg_bounds(basket, "Price")
    print(
        f"\nexact AVG(Price) range (Dinkelbach over the BIP): "
        f"[{avg.lower} = {float(avg.lower):.3f}, {avg.upper} = {float(avg.upper):.3f}]"
    )


if __name__ == "__main__":
    main()
