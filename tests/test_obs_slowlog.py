"""Slow-query capture: the span buffer and the on-disk ring."""

from __future__ import annotations

import json
import os
import threading

from repro.obs.slowlog import SlowQueryRing, SpanBuffer
from repro.obs.tracer import Tracer


# -- SpanBuffer --------------------------------------------------------------
def _fill(buffer: SpanBuffer, trace_id: str, spans: int = 2) -> None:
    tracer = Tracer([buffer], retain=False)
    for index in range(spans):
        with tracer.span(f"op{index}", trace_id=trace_id):
            pass


def test_span_buffer_groups_by_trace_and_pops():
    buffer = SpanBuffer()
    _fill(buffer, "t1", spans=3)
    _fill(buffer, "t2", spans=1)
    assert len(buffer) == 2
    spans = buffer.pop("t1")
    assert [s["name"] for s in spans] == ["op0", "op1", "op2"]
    assert all(s["trace_id"] == "t1" for s in spans)
    assert buffer.pop("t1") == []  # popped means gone
    assert len(buffer) == 1


def test_span_buffer_pop_unknown_or_empty_trace():
    buffer = SpanBuffer()
    assert buffer.pop("unknown") == []
    assert buffer.pop(None) == []
    assert buffer.pop("") == []


def test_span_buffer_ignores_spans_without_trace_id():
    buffer = SpanBuffer()
    tracer = Tracer([buffer], retain=False)
    with tracer.span("anon", trace_id=""):
        pass
    assert len(buffer) in (0, 1)  # tracer may assign its own trace id
    # Direct call with a blank id is definitely dropped:
    class _FakeSpan:
        def to_dict(self):
            return {"trace_id": "", "name": "x"}

    before = len(buffer)
    buffer(_FakeSpan())
    assert len(buffer) == before


def test_span_buffer_evicts_oldest_trace():
    buffer = SpanBuffer(max_traces=2)
    _fill(buffer, "t1")
    _fill(buffer, "t2")
    _fill(buffer, "t3")  # evicts t1
    assert buffer.pop("t1") == []
    assert buffer.pop("t3") != []
    assert buffer.dropped_spans == 2


def test_span_buffer_caps_spans_per_trace():
    buffer = SpanBuffer(max_spans_per_trace=2)
    _fill(buffer, "t1", spans=5)
    assert len(buffer.pop("t1")) == 2
    assert buffer.dropped_spans == 3


# -- SlowQueryRing -----------------------------------------------------------
def test_ring_records_and_reads_back(tmp_path):
    ring = SlowQueryRing(str(tmp_path / "ring"), capacity=4)
    path = ring.record({"trace_id": "t1", "total_ms": 12.5})
    assert os.path.exists(path)
    entries = ring.entries()
    assert len(entries) == len(ring) == 1
    assert entries[0]["trace_id"] == "t1"
    assert entries[0]["seq"] == 0
    assert entries[0]["recorded_unix"] > 0
    assert ring.written == 1


def test_ring_wraps_at_capacity_keeping_newest(tmp_path):
    ring = SlowQueryRing(str(tmp_path / "ring"), capacity=3)
    for index in range(7):
        ring.record({"n": index})
    entries = ring.entries()
    assert len(entries) == 3  # bounded by construction
    assert [e["n"] for e in entries] == [4, 5, 6]  # oldest overwritten first
    assert len(os.listdir(ring.directory)) == 3
    assert ring.written == 7


def test_ring_seq_resumes_after_restart(tmp_path):
    directory = str(tmp_path / "ring")
    first = SlowQueryRing(directory, capacity=8)
    first.record({"n": 0})
    first.record({"n": 1})
    reopened = SlowQueryRing(directory, capacity=8)
    reopened.record({"n": 2})
    seqs = [e["seq"] for e in reopened.entries()]
    assert seqs == [0, 1, 2]  # no seq reuse across restarts


def test_ring_writes_are_atomic_no_tmp_left_behind(tmp_path):
    ring = SlowQueryRing(str(tmp_path / "ring"), capacity=2)
    ring.record({"n": 0})
    assert all(not name.endswith(".tmp") and ".tmp-" not in name
               for name in os.listdir(ring.directory))


def test_ring_ignores_foreign_and_corrupt_files(tmp_path):
    directory = tmp_path / "ring"
    directory.mkdir()
    (directory / "README.txt").write_text("not a slot")
    (directory / "slow-0001.json").write_text("{torn")
    ring = SlowQueryRing(str(directory), capacity=4)
    assert ring.entries() == []
    ring.record({"n": 0})  # resumed seq from an unreadable dir starts at 0
    assert [e["n"] for e in ring.entries()] == [0]


def test_ring_serializes_non_json_values_via_repr(tmp_path):
    ring = SlowQueryRing(str(tmp_path / "ring"), capacity=2)
    path = ring.record({"witness": {1, 2}})  # a set is not JSON
    entry = json.load(open(path, encoding="utf-8"))
    assert "1" in entry["witness"] and "2" in entry["witness"]


def test_ring_concurrent_records_unique_seqs(tmp_path):
    ring = SlowQueryRing(str(tmp_path / "ring"), capacity=64)
    threads = [
        threading.Thread(target=lambda: ring.record({"x": 1})) for _ in range(16)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seqs = [e["seq"] for e in ring.entries()]
    assert sorted(seqs) == list(range(16))
