"""Encoding throughput: the L-model phase per anonymization scheme.

Measures anonymization and LICM-encoding rates (transactions/second,
variables created) — the fixed cost the paper's Figure 6 labels L-model.
Run::

    pytest benchmarks/bench_encode.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.anonymize import (
    Hierarchy,
    encode_bipartite,
    encode_generalized,
    k_anonymize,
    km_anonymize,
    safe_grouping,
)
from repro.data import generate

SIZES = (500, 1_500)
K = 4


@pytest.fixture(scope="module")
def datasets():
    out = {}
    for size in SIZES:
        dataset = generate(size, num_items=128, seed=11)
        out[size] = (dataset, Hierarchy.balanced(dataset.items, fanout=4))
    return out


@pytest.mark.parametrize("size", SIZES)
def test_km_anonymize(benchmark, datasets, size):
    dataset, hierarchy = datasets[size]
    generalized = benchmark.pedantic(
        lambda: km_anonymize(dataset, hierarchy, K, m=2), rounds=2, iterations=1
    )
    benchmark.extra_info["loss"] = round(generalized.information_loss(), 4)


@pytest.mark.parametrize("size", SIZES)
def test_k_anonymize(benchmark, datasets, size):
    dataset, hierarchy = datasets[size]
    generalized = benchmark.pedantic(
        lambda: k_anonymize(dataset, hierarchy, K), rounds=2, iterations=1
    )
    benchmark.extra_info["loss"] = round(generalized.information_loss(), 4)


@pytest.mark.parametrize("size", SIZES)
def test_safe_grouping(benchmark, datasets, size):
    dataset, _ = datasets[size]
    grouping = benchmark.pedantic(
        lambda: safe_grouping(dataset, K), rounds=2, iterations=1
    )
    benchmark.extra_info["groups"] = len(grouping.transaction_groups)


@pytest.mark.parametrize("size", SIZES)
def test_encode_generalized(benchmark, datasets, size):
    dataset, hierarchy = datasets[size]
    generalized = k_anonymize(dataset, hierarchy, K)
    encoded = benchmark.pedantic(
        lambda: encode_generalized(generalized), rounds=2, iterations=1
    )
    benchmark.extra_info["variables"] = encoded.model.num_variables
    benchmark.extra_info["constraints"] = encoded.model.num_constraints


@pytest.mark.parametrize("size", SIZES)
def test_encode_bipartite(benchmark, datasets, size):
    dataset, _ = datasets[size]
    grouping = safe_grouping(dataset, K)
    encoded = benchmark.pedantic(
        lambda: encode_bipartite(grouping), rounds=2, iterations=1
    )
    benchmark.extra_info["variables"] = encoded.model.num_variables
