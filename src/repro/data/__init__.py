"""Dataset substrate: transaction containers and the synthetic generator."""

from repro.data.generator import generate
from repro.data.transactions import TransactionDataset

__all__ = ["TransactionDataset", "generate"]
