"""The solver facade: one entry point over all backends.

    from repro.solver import solve, SolverOptions
    solution = solve(problem, sense="max", options=SolverOptions(backend="bb"))
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SolverError
from repro.solver.model import BIPProblem
from repro.solver.result import Solution, SolverOptions


def _resolve_backend(name: str) -> str:
    if name != "auto":
        return name
    try:
        from scipy.optimize import milp  # noqa: F401

        return "scipy"
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        return "bb"


def solve(
    problem: BIPProblem,
    sense: str = "max",
    options: Optional[SolverOptions] = None,
) -> Solution:
    """Optimize a binary program.

    :param sense: ``'max'`` or ``'min'``.
    :param options: backend and limits; see :class:`SolverOptions`.
    """
    if sense not in ("max", "min"):
        raise SolverError(f"sense must be 'max' or 'min', got {sense!r}")
    options = options or SolverOptions()
    backend = _resolve_backend(options.backend)
    if backend == "bb":
        from repro.solver.branch_and_bound import solve_bip

        return solve_bip(problem, sense, options)
    if backend == "scipy":
        from repro.solver.scipy_backend import solve_bip_scipy

        return solve_bip_scipy(problem, sense, options)
    raise SolverError(f"unknown backend {backend!r}")


def maximize(problem: BIPProblem, options: Optional[SolverOptions] = None) -> Solution:
    """Shorthand for ``solve(problem, 'max', options)``."""
    return solve(problem, "max", options)


def minimize(problem: BIPProblem, options: Optional[SolverOptions] = None) -> Solution:
    """Shorthand for ``solve(problem, 'min', options)``."""
    return solve(problem, "min", options)
