"""Unit tests for the deterministic relational engine substrate."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.predicates import And, Between, Compare, InSet, Not, Or, TruePredicate
from repro.relational.relation import Database, Relation
from repro.relational.schema import Schema


@pytest.fixture
def trans():
    return Relation(
        "TRANS",
        ["TID", "Item", "Price"],
        [
            ("T1", "beer", 6),
            ("T1", "wine", 9),
            ("T2", "beer", 6),
            ("T2", "bread", 2),
            ("T3", "wine", 9),
        ],
    )


def test_schema_positions_and_errors():
    schema = Schema(["A", "B"])
    assert schema.position("B") == 1
    assert schema.positions(["B", "A"]) == (1, 0)
    with pytest.raises(SchemaError):
        schema.position("C")
    with pytest.raises(SchemaError):
        Schema(["A", "A"])


def test_schema_project_and_concat():
    schema = Schema(["A", "B"])
    assert schema.project(["B"]).attributes == ("B",)
    combined = schema.concat(Schema(["C"]))
    assert combined.attributes == ("A", "B", "C")
    with pytest.raises(SchemaError):
        schema.concat(Schema(["A"]))


def test_relation_insert_checks_arity():
    rel = Relation("R", ["A"])
    with pytest.raises(SchemaError):
        rel.insert((1, 2))


def test_relation_distinct(trans):
    doubled = Relation("D", trans.schema, list(trans.rows) + list(trans.rows))
    assert len(doubled) == 10
    assert len(doubled.distinct()) == 5


def test_select(trans):
    out = algebra.select(trans, Compare("Item", "==", "beer"))
    assert len(out) == 2
    assert set(out.column("TID")) == {"T1", "T2"}


def test_select_compound_predicates(trans):
    pred = And([Between("Price", 5, 10), Not(Compare("Item", "==", "wine"))])
    out = algebra.select(trans, pred)
    assert set(out.rows) == {("T1", "beer", 6), ("T2", "beer", 6)}
    out2 = algebra.select(trans, Or([Compare("Item", "==", "bread"), InSet("TID", {"T3"})]))
    assert len(out2) == 2
    assert len(algebra.select(trans, TruePredicate())) == 5


def test_project_set_semantics(trans):
    out = algebra.project(trans, ["Item"])
    assert sorted(out.rows) == [("beer",), ("bread",), ("wine",)]


def test_intersect_union_difference():
    r1 = Relation("R1", ["A"], [("x",), ("y",)])
    r2 = Relation("R2", ["A"], [("y",), ("z",)])
    assert set(algebra.intersect(r1, r2).rows) == {("y",)}
    assert set(algebra.union(r1, r2).rows) == {("x",), ("y",), ("z",)}
    assert set(algebra.difference(r1, r2).rows) == {("x",)}
    with pytest.raises(SchemaError):
        algebra.intersect(r1, Relation("R3", ["B"]))


def test_product_and_rename(trans):
    other = Relation("L", ["Loc"], [(1,), (2,)])
    out = algebra.product(trans, other)
    assert len(out) == 10
    assert out.schema.attributes == ("TID", "Item", "Price", "Loc")
    renamed = algebra.rename(other, {"Loc": "Location"})
    assert renamed.schema.attributes == ("Location",)


def test_natural_join(trans):
    prices = Relation("P", ["Item", "Category"], [("beer", "alcohol"), ("wine", "alcohol")])
    out = algebra.natural_join(trans, prices)
    assert out.schema.attributes == ("TID", "Item", "Price", "Category")
    assert len(out) == 4  # bread unmatched


def test_natural_join_without_shared_is_product(trans):
    other = Relation("L", ["Loc"], [(1,)])
    assert len(algebra.natural_join(trans, other)) == 5


def test_group_count_and_having(trans):
    counted = algebra.group_count(trans, ["TID"])
    as_dict = {row[0]: row[1] for row in counted.rows}
    assert as_dict == {"T1": 2, "T2": 2, "T3": 1}
    qualifying = algebra.having_count(trans, ["TID"], ">=", 2)
    assert set(qualifying.rows) == {("T1",), ("T2",)}


def test_group_count_set_semantics():
    rel = Relation("R", ["G", "V"], [("g", 1), ("g", 1), ("g", 2)])
    counted = algebra.group_count(rel, ["G"])
    assert counted.rows == [("g", 2)]


def test_count_and_sum(trans):
    assert algebra.count_rows(trans) == 5
    assert algebra.sum_attribute(trans, "Price") == 32


def test_count_rows_distinct():
    rel = Relation("R", ["A"], [("x",), ("x",)])
    assert algebra.count_rows(rel) == 1


def test_database_registry(trans):
    db = Database([trans])
    assert db.table("TRANS") is trans
    assert "TRANS" in db
    with pytest.raises(SchemaError):
        db.add(trans)
    with pytest.raises(SchemaError):
        db.table("MISSING")
