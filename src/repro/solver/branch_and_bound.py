"""From-scratch branch-and-bound for pure-binary integer programs.

The reproduction's stand-in for CPLEX's MIP search: LP-relaxation bounding
(HiGHS or the built-in simplex), bound propagation at every node, rounding
heuristics for incumbents, best-bound node selection, and configurable
branching rules.  Because LICM objectives have integer coefficients, dual
bounds are floored to the nearest integer, which prunes far earlier than
the raw LP value.

Two raw-speed mechanisms sit in front of the search (see docs/solver.md):

* **Vectorized kernels** (``SolverOptions.kernels``, default ``'auto'``):
  the problem is compiled once into numpy CSR arrays
  (:mod:`repro.solver.kernels`) and per-node propagation, cover-cut
  separation, and a surrogate knapsack dual bound run as batch array
  operations.  The scalar worklist remains the fallback and parity oracle.
* **Node-0 incumbent seeding** (``SolverOptions.seed_incumbent``): a
  greedy point (repaired by :func:`~repro.solver.heuristics.greedy_seed`)
  is installed as the incumbent before any LP is solved; when the kernel
  bound already matches it, the solve closes at the root with *zero* LP
  calls — the common case for single-cardinality-row components.  The
  rounded root LP point is also offered as a seed.  Provenance lands in
  ``Solution.seed_incumbent`` and the ``incumbents`` span events.

When a tracer is active (:mod:`repro.obs.tracer`) the search opens a
``bb.search`` span with node-level profiling: nodes expanded, maximum
depth, incumbent updates, global-bound improvements, prune counts by
reason (bound, propagation, LP-infeasible, integral leaf) and a bounded
stream of sampled node records (one per ``tracer.sample_every`` expanded
nodes) — enough to see *where* a hard instance spends its search without
paying per-node export costs.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
from typing import Optional

from repro.engine.telemetry import Stopwatch
from repro.errors import InfeasibleError, SolverError
from repro.obs.export import global_registry
from repro.obs.tracer import NullSpan, current_tracer
from repro.solver.heuristics import greedy_seed, round_and_repair
from repro.solver.model import BIPProblem
from repro.solver.presolve import presolve
from repro.solver.propagation import FREE, ONE, ZERO, CompiledConstraints, propagate
from repro.solver.relaxation import solve_relaxation
from repro.solver.result import Solution, SolverOptions

logger = logging.getLogger(__name__)

_NULL_SPAN = NullSpan()


def _load_kernels(options: SolverOptions):
    """Resolve the kernels toggle to a module or ``None`` (scalar path)."""
    mode = getattr(options, "kernels", "auto")
    if mode == "off":
        return None
    try:
        from repro.solver import kernels
    except ImportError:
        if mode == "on":
            raise SolverError("kernels='on' requires numpy, which is not importable")
        return None
    return kernels

#: count-shaped buckets for the per-search node/prune distributions
_SEARCH_BUCKETS = (1, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 100_000)


def _observe_search(span, nodes: int, prunes: dict) -> None:
    """Always-on histograms over completed searches (exemplar = trace id).

    The distribution of nodes/prunes *per solve* is what makes "the p99
    solve exploded" legible on a scrape — each bucket carries a trace-id
    exemplar so the offending search's span tree is one lookup away.
    The per-reason counter answers the complementary question: *which*
    prune mechanism is doing the work fleet-wide.
    """
    trace_id = getattr(span, "trace_id", "")
    exemplar = {"trace_id": trace_id} if trace_id else None
    registry = global_registry()
    registry.histogram(
        "bb_nodes_per_solve",
        "Branch-and-bound nodes expanded per completed search",
        buckets=_SEARCH_BUCKETS,
    ).observe(nodes, exemplar=exemplar)
    registry.histogram(
        "bb_prunes_per_solve",
        "Branch-and-bound prunes (all reasons) per completed search",
        buckets=_SEARCH_BUCKETS,
    ).observe(sum(prunes.values()), exemplar=exemplar)
    counter = registry.counter(
        "bb_prunes_total", "Branch-and-bound prunes by reason"
    )
    for reason, count in prunes.items():
        if count:
            counter.inc(count, labels={"reason": reason})


def solve_bip(
    problem: BIPProblem, sense: str = "max", options: Optional[SolverOptions] = None
) -> Solution:
    """Optimize a binary program with branch-and-bound.

    ``sense`` is ``'max'`` or ``'min'``; minimization is solved by negating
    the objective.
    """
    options = options or SolverOptions()

    if sense == "min":
        negated = BIPProblem(
            num_vars=problem.num_vars,
            constraints=problem.constraints,
            objective={i: -c for i, c in problem.objective.items()},
            objective_constant=-problem.objective_constant,
            names=problem.names,
        )
        inner = solve_bip(negated, "max", options)
        return Solution(
            status=inner.status,
            objective=None if inner.objective is None else -inner.objective,
            x=inner.x,
            bound=None if inner.bound is None else -inner.bound,
            nodes=inner.nodes,
            solve_time=inner.solve_time,
            backend=inner.backend,
            seed_incumbent=inner.seed_incumbent,
        )

    tracer = current_tracer()
    if not tracer.enabled:
        return _solve_max(problem, options, _NULL_SPAN, 0)
    with tracer.span(
        "bb.search", vars=problem.num_vars, constraints=problem.num_constraints
    ) as span:
        solution = _solve_max(problem, options, span, tracer.sample_every)
        span.set("status", solution.status).set("nodes", solution.nodes)
        span.set("objective", solution.objective)
        return solution


def _solve_max(
    problem: BIPProblem, options: SolverOptions, span, sample_every: int
) -> Solution:
    """The maximization search.  ``span`` is the profiling sink — a real
    :class:`~repro.obs.tracer.Span` under tracing, a shared no-op span
    otherwise, so the hot loop has no branching on "is tracing on"."""
    clock = Stopwatch()

    # An already-cancelled solve must not claim proof: the seed shortcut can
    # close a problem before the node loop ever polls should_stop(), so the
    # cancellation sources get one poll before any root work happens.
    if options.should_stop():
        return Solution(
            status="limit", nodes=0, solve_time=clock.elapsed, backend="bb"
        )

    # ---- presolve --------------------------------------------------------
    if options.use_presolve:
        try:
            reduction = presolve(problem)
        except InfeasibleError:
            span.set("prune_presolve", 1)
            return Solution(
                status="infeasible",
                nodes=0,
                solve_time=clock.elapsed,
                backend="bb",
            )
        core = reduction.problem
    else:
        reduction = None
        core = problem

    if core.num_vars == 0:
        x = reduction.lift([]) if reduction else []
        return Solution(
            status="optimal",
            objective=core.objective_constant,
            x=x,
            bound=float(core.objective_constant),
            nodes=0,
            solve_time=clock.elapsed,
            backend="bb",
        )

    kernels = _load_kernels(options)
    kern = kernels.compile_problem(core) if kernels is not None else None
    compiled = CompiledConstraints(core) if kern is None else None
    counter = itertools.count()
    best_x: Optional[list[int]] = None
    best_obj = -math.inf
    nodes_processed = 0
    pseudocosts = [1.0] * core.num_vars  # crude degradation estimates

    # search-profiling accumulators (attached to the span after the loop)
    incumbent_updates = 0
    bound_improvements = 0
    max_depth = 0
    prunes = {
        "bound": 0,
        "child_bound": 0,
        "propagation": 0,
        "lp_infeasible": 0,
        "kernel_bound": 0,
    }
    integral_leaves = 0
    heuristic_incumbents = 0
    last_global_bound = math.inf

    def integral_objective(x_int: list[int]) -> int:
        return core.objective_value(x_int)

    def try_incumbent(x_int: list[int], source: str) -> None:
        nonlocal best_x, best_obj, incumbent_updates, heuristic_incumbents
        value = integral_objective(x_int)
        if value > best_obj and core.is_feasible(x_int):
            best_obj = value
            best_x = list(x_int)
            incumbent_updates += 1
            if source == "heuristic":
                heuristic_incumbents += 1
            span.event(
                "incumbents",
                {
                    "node": nodes_processed,
                    "objective": value,
                    "source": source,
                    "t": clock.elapsed,
                },
            )
            logger.debug(
                "incumbent %s after %d nodes (%.2fs)",
                value,
                nodes_processed,
                clock.elapsed,
            )

    # Root node.
    if kern is not None:
        root_domains = kern.propagate(kern.root_domains())
    else:
        root_domains = propagate(compiled, [FREE] * core.num_vars)
    if root_domains is None:
        return Solution(
            status="infeasible",
            nodes=1,
            solve_time=clock.elapsed,
            backend="bb",
        )

    # Node-0 incumbent seeding: install a greedy incumbent before any LP
    # is solved, so bound pruning bites from the very first node.
    seed_source: Optional[str] = None
    if options.seed_incumbent:
        if kern is not None:
            seeded = kern.greedy_seed(root_domains)
        else:
            seeded = greedy_seed(core, root_domains)
        if seeded is not None:
            try_incumbent(seeded, "seed")
            if incumbent_updates:
                seed_source = "greedy"

    # Kernel shortcut: when the surrogate knapsack bound already equals the
    # seed, the root is closed without solving a single LP.
    seed_closed = False
    if kern is not None and best_x is not None:
        if kern.upper_bound(root_domains) <= best_obj:
            seed_closed = True
            nodes_processed = 1  # the root was evaluated and closed
            span.set("seed_shortcut", 1)

    heap: list = []
    hit_limit = False
    if not seed_closed:
        # Heap of (-bound, tiebreak, domains, x_lp, depth). Bound is the
        # floored LP value.
        status_root, lp_value, x_lp = solve_relaxation(
            core, root_domains, options.lp_engine
        )
        if status_root == "infeasible":
            return Solution(
                status="infeasible",
                nodes=1,
                solve_time=clock.elapsed,
                backend="bb",
            )

        # Offer the rounded root LP point as a (better) seed.
        if options.seed_incumbent:
            repaired = round_and_repair(core, x_lp, root_domains)
            if repaired is not None:
                before = incumbent_updates
                try_incumbent(repaired, "seed")
                if incumbent_updates > before and seed_source is None:
                    seed_source = "lp_round"

        # Root cutting planes: strengthen the relaxation with cover cuts
        # before branching (the "branch-and-cut" ingredient the paper
        # credits solvers with).  Cuts are valid for every integer-feasible
        # point, so the optimum is unchanged; only the LP bound tightens.
        cuts_added = 0
        if options.cut_rounds > 0:
            from repro.solver.cuts import separate_cover_cuts

            for _ in range(options.cut_rounds):
                if options.should_stop():
                    break
                if math.floor(lp_value + 1e-7) <= best_obj:
                    break  # the seed already matches the dual bound
                fractional_point = any(
                    options.integrality_tol < value < 1 - options.integrality_tol
                    for value in x_lp
                )
                if not fractional_point:
                    break
                if kern is not None:
                    cuts = kernels.separate_cover_cuts_vec(kern, x_lp)
                else:
                    cuts = separate_cover_cuts(core, x_lp)
                if not cuts:
                    break
                cuts_added += len(cuts)
                core = BIPProblem(
                    num_vars=core.num_vars,
                    constraints=core.constraints + cuts,
                    objective=core.objective,
                    objective_constant=core.objective_constant,
                    names=core.names,
                )
                if kern is not None:
                    kern = kernels.compile_problem(core)
                else:
                    compiled = CompiledConstraints(core)
                status_root, lp_value, x_lp = solve_relaxation(
                    core, root_domains, options.lp_engine
                )
                if status_root == "infeasible":
                    # Cuts are valid for every integer point, so a
                    # cut-tightened LP going empty proves the instance has
                    # no integer solution.
                    span.set("root_cuts", cuts_added).set("prune_cuts", 1)
                    return Solution(
                        status="infeasible",
                        nodes=1,
                        solve_time=clock.elapsed,
                        backend="bb",
                    )
        span.set("root_cuts", cuts_added).set("root_lp_bound", lp_value)

        root_bound = math.floor(lp_value + 1e-7)
        heap = [(-root_bound, next(counter), root_domains, x_lp, 0)]

    while heap:
        if nodes_processed >= options.node_limit:
            hit_limit = True
            break
        if clock.elapsed > options.time_limit:
            hit_limit = True
            break
        if options.should_stop():
            hit_limit = True
            break
        neg_bound, _, domains, x_lp, depth = heapq.heappop(heap)
        bound = -neg_bound
        if bound < last_global_bound:
            # best-first pops a non-increasing bound stream: each strict
            # drop is the proven global upper bound improving.
            last_global_bound = bound
            bound_improvements += 1
            span.event(
                "bounds",
                {"node": nodes_processed, "bound": bound, "t": clock.elapsed},
            )
        if bound <= best_obj:
            prunes["bound"] += 1
            continue  # integer bound cannot improve the incumbent
        nodes_processed += 1
        if depth > max_depth:
            max_depth = depth
        if sample_every and nodes_processed % sample_every == 0:
            span.event(
                "samples",
                {
                    "node": nodes_processed,
                    "depth": depth,
                    "bound": bound,
                    "incumbent": None if best_obj == -math.inf else int(best_obj),
                    "open": len(heap),
                },
            )

        # Fractionality check against the node's LP point.
        fractional = [
            idx
            for idx in range(core.num_vars)
            if domains[idx] == FREE
            and min(x_lp[idx], 1 - x_lp[idx]) > options.integrality_tol
        ]
        if not fractional:
            x_int = [
                1 if domains[i] == ONE else 0 if domains[i] == ZERO else int(round(x_lp[i]))
                for i in range(core.num_vars)
            ]
            try_incumbent(x_int, "integral")
            integral_leaves += 1
            continue

        if options.use_heuristics:
            repaired = round_and_repair(core, x_lp, domains)
            if repaired is not None:
                try_incumbent(repaired, "heuristic")
                if bound <= best_obj:
                    prunes["bound"] += 1
                    continue

        branch_var = _pick_branch_variable(
            fractional, x_lp, pseudocosts, options.branching
        )

        # Prefer the side the LP leans toward first (helps DFS-style dives).
        order = (ONE, ZERO) if x_lp[branch_var] >= 0.5 else (ZERO, ONE)
        parent_lp = lp_value
        for value in order:
            if kern is not None:
                fixed = domains.copy()
                fixed[branch_var] = value
                child = kern.propagate(fixed)
            else:
                fixed = list(domains)
                fixed[branch_var] = value
                child = propagate(compiled, fixed, dirty=compiled.by_var[branch_var])
            if child is None:
                prunes["propagation"] += 1
                continue
            # Surrogate knapsack bound: prune before paying for an LP solve.
            if kern is not None and best_obj != -math.inf:
                if kern.upper_bound(child) <= best_obj:
                    prunes["kernel_bound"] += 1
                    continue
            status, child_lp, child_x = solve_relaxation(core, child, options.lp_engine)
            if status == "infeasible":
                prunes["lp_infeasible"] += 1
                continue
            pseudocosts[branch_var] = 0.5 * pseudocosts[branch_var] + 0.5 * max(
                parent_lp - child_lp, 0.0
            )
            child_bound = math.floor(child_lp + 1e-7)
            if child_bound <= best_obj:
                prunes["child_bound"] += 1
                continue
            if options.node_selection == "dfs":
                # Simulate DFS by biasing the key with depth via the counter sign.
                heapq.heappush(
                    heap, (-child_bound, -next(counter), child, child_x, depth + 1)
                )
            else:
                heapq.heappush(
                    heap, (-child_bound, next(counter), child, child_x, depth + 1)
                )

    elapsed = clock.elapsed
    _observe_search(span, nodes_processed, prunes)
    span.set("max_depth", max_depth).set("incumbent_updates", incumbent_updates)
    span.set("bound_improvements", bound_improvements)
    span.set("integral_leaves", integral_leaves)
    span.set("heuristic_incumbents", heuristic_incumbents)
    span.set("open_nodes", len(heap)).set("hit_limit", hit_limit)
    for reason, count in prunes.items():
        span.set(f"prune_{reason}", count)

    if best_x is None and not hit_limit:
        return Solution(status="infeasible", nodes=nodes_processed, solve_time=elapsed, backend="bb")

    remaining_bound = max((-item[0] for item in heap), default=best_obj)
    proven_bound = max(best_obj, remaining_bound) if hit_limit else best_obj

    lifted = reduction.lift(best_x) if (reduction and best_x is not None) else best_x
    return Solution(
        status="limit" if hit_limit else "optimal",
        objective=None if best_obj == -math.inf else int(best_obj),
        x=lifted,
        bound=float(proven_bound) if proven_bound != -math.inf else None,
        # A seeded search can close by pruning the root before expanding
        # anything; evaluating the root still counts as one node (matching
        # the root-infeasible convention above).
        nodes=max(nodes_processed, 1),
        solve_time=elapsed,
        backend="bb",
        seed_incumbent=seed_source,
    )


def _pick_branch_variable(fractional, x_lp, pseudocosts, rule: str) -> int:
    """Choose the branching variable among the fractional ones."""
    if rule == "first":
        return fractional[0]
    if rule == "pseudocost":
        return max(
            fractional,
            key=lambda idx: pseudocosts[idx] * min(x_lp[idx], 1 - x_lp[idx]),
        )
    # most fractional (default): closest to 0.5
    return min(fractional, key=lambda idx: abs(x_lp[idx] - 0.5))
