"""Constraint/variable pruning (Section V, "Pruning").

Variables and constraints that are not reachable from the objective cannot
affect the optimum, so they are removed before handing the BIP to the
solver.  The paper exploits the fact that lineage variables are created
sequentially: "a single pass over the constraints (from last to first)
suffices to identify the reachable variables".

Two variants are provided:

* :func:`prune_single_pass` — the paper's backward sweep.  Exact whenever
  every constraint's *latest-created* variable is the derived one (true for
  all constraints emitted by the LICM operators).
* :func:`prune_fixpoint` — iterates reachability to a fixed point; exact
  for arbitrary constraint stores.  This is the default used by the bounds
  API, and the test-suite checks the two agree on operator-generated models.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple

from repro.core.constraints import ConstraintStore, LinearConstraint


class PruneResult(NamedTuple):
    """Outcome of a pruning pass."""

    constraints: list[LinearConstraint]
    variables: set[int]
    original_constraints: int
    original_variables: int

    @property
    def stats(self) -> dict:
        """Counters matching the paper's Figure 7 reporting."""
        return {
            "variables_before": self.original_variables,
            "constraints_before": self.original_constraints,
            "variables_after": len(self.variables),
            "constraints_after": len(self.constraints),
        }


def _variables_in(store: ConstraintStore) -> set[int]:
    out: set[int] = set()
    for constraint in store:
        out.update(constraint.variables)
    return out


def prune_single_pass(store: ConstraintStore, seeds: Iterable[int]) -> PruneResult:
    """The paper's single backward pass over the constraint list."""
    reachable = set(seeds)
    all_vars = _variables_in(store) | reachable
    kept_reversed: list[LinearConstraint] = []
    for position in range(len(store) - 1, -1, -1):
        constraint = store[position]
        if any(v in reachable for v in constraint.variables):
            kept_reversed.append(constraint)
            reachable.update(constraint.variables)
    kept_reversed.reverse()
    return PruneResult(kept_reversed, reachable, len(store), len(all_vars))


def prune_fixpoint(store: ConstraintStore, seeds: Iterable[int]) -> PruneResult:
    """Reachability closure over the variable/constraint bipartite graph.

    Uses the store's per-variable index, so the cost is linear in the size
    of the reachable subproblem.
    """
    reachable = set(seeds)
    all_vars = _variables_in(store) | reachable
    kept_positions: set[int] = set()
    # Build position lookup once: store indexes constraints by variable.
    queue = deque(reachable)
    position_of = {id(c): i for i, c in enumerate(store)}
    while queue:
        var = queue.popleft()
        for constraint in store.constraints_on(var):
            pos = position_of[id(constraint)]
            if pos in kept_positions:
                continue
            kept_positions.add(pos)
            for other in constraint.variables:
                if other not in reachable:
                    reachable.add(other)
                    queue.append(other)
    kept = [store[pos] for pos in sorted(kept_positions)]
    return PruneResult(kept, reachable, len(store), len(all_vars))


def prune_lineage(model, seeds: Iterable[int]) -> PruneResult:
    """Lineage-directed pruning using the model's operator lineage registry.

    Reachability only flows *backward* along recorded lineage (derived
    variable -> its parents) and through non-lineage (base correlation or
    user-added) constraints.  A sibling query's lineage constraints — which
    mention reachable base variables but define *other* derived variables —
    are dropped.  This is sound because operator lineage constraints are
    deterministic: for any assignment of their parents they have exactly
    one satisfying completion, so removing them never changes the feasible
    region projected onto the kept variables.

    This is the right pruning when several queries have been answered
    against one shared model; on a single-query model it coincides with
    :func:`prune_fixpoint`.
    """
    store: ConstraintStore = model.constraints
    position_of = {id(c): i for i, c in enumerate(store)}
    all_vars = _variables_in(store) | set(seeds)

    reachable = set(seeds)
    kept_positions: set[int] = set()
    queue = deque(reachable)
    while queue:
        var = queue.popleft()
        # (1) the variable's own lineage: keep its defining constraints and
        # walk to its parents.
        if var in model.lineage_parents:
            for constraint in model.lineage_constraints[var]:
                kept_positions.add(position_of[id(constraint)])
            for parent in model.lineage_parents[var]:
                if parent not in reachable:
                    reachable.add(parent)
                    queue.append(parent)
        # (2) base / user constraints mentioning the variable: keep them and
        # pull in their other variables.
        for constraint in store.constraints_on(var):
            if model.is_lineage_constraint(constraint):
                continue  # sibling lineage is dropped; own lineage handled above
            pos = position_of[id(constraint)]
            if pos in kept_positions:
                continue
            kept_positions.add(pos)
            for other in constraint.variables:
                if other not in reachable:
                    reachable.add(other)
                    queue.append(other)
    kept = [store[pos] for pos in sorted(kept_positions)]
    return PruneResult(kept, reachable, len(store), len(all_vars))


def prune(
    store: ConstraintStore,
    seeds: Iterable[int],
    method: str = "fixpoint",
    model=None,
) -> PruneResult:
    """Dispatch to a pruning strategy.

    ``"lineage"`` (requires ``model``) drops other queries' lineage from a
    shared model; ``"fixpoint"`` is exact undirected reachability;
    ``"single_pass"`` is the paper's backward sweep.
    """
    if method == "lineage":
        if model is None:
            raise ValueError("lineage pruning needs the model")
        return prune_lineage(model, seeds)
    if method == "fixpoint":
        return prune_fixpoint(store, seeds)
    if method == "single_pass":
        return prune_single_pass(store, seeds)
    raise ValueError(f"unknown pruning method {method!r}")
