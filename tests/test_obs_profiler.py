"""The sampling profiler: both engines, trace attribution, folded output."""

from __future__ import annotations

import signal
import sys
import threading
import time

import pytest

from repro.obs.profiler import (
    SamplingProfiler,
    active_profiler,
    tag_thread,
    tagged,
    untag_thread,
)


def _spin(seconds: float, stop: threading.Event = None) -> None:
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        if stop is not None and stop.is_set():
            return
        acc += 1


# -- lifecycle ---------------------------------------------------------------
def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="auto|signal|thread"):
        SamplingProfiler(mode="perf")


def test_active_profiler_tracks_start_stop():
    assert active_profiler() is None
    profiler = SamplingProfiler(interval=0.001, mode="thread")
    profiler.start()
    try:
        assert active_profiler() is profiler
        assert profiler.running
        profiler.start()  # idempotent
    finally:
        profiler.stop()
    assert active_profiler() is None
    assert not profiler.running
    profiler.stop()  # idempotent


def test_context_manager_starts_and_stops():
    with SamplingProfiler(interval=0.001, mode="thread") as profiler:
        assert profiler.running
        _spin(0.05)
    assert not profiler.running
    assert profiler.samples_taken > 0


# -- thread engine -----------------------------------------------------------
def test_thread_mode_samples_worker_threads():
    stop = threading.Event()
    worker = threading.Thread(target=_spin, args=(5.0, stop), name="busy")
    with SamplingProfiler(interval=0.001, mode="thread") as profiler:
        worker.start()
        _spin(0.1)
    stop.set()
    worker.join()
    folded = profiler.folded()
    assert folded, "no stacks sampled"
    # The busy worker's frames must appear in some sampled stack.
    assert any("_spin" in stack for stack in folded)
    assert sum(folded.values()) == profiler.samples_taken


def test_signal_mode_samples_main_thread():
    if not hasattr(signal, "setitimer"):
        pytest.skip("setitimer unavailable on this platform")
    with SamplingProfiler(interval=0.001, mode="signal") as profiler:
        _spin(0.2)
    assert profiler.samples_taken > 0
    assert any("_spin" in stack for stack in profiler.folded())


def test_signal_fired_while_lock_held_drops_sample_instead_of_deadlocking():
    """SIGPROF lands on the main thread; if that thread is inside
    folded()/__len__ holding the aggregation lock, the handler must drop
    the sample, not block on a lock its own thread holds."""
    profiler = SamplingProfiler(mode="signal")
    frame = sys._getframe()
    with profiler._lock:  # simulate the timer interrupting folded()
        profiler._on_signal(0, frame)
    assert profiler.samples_dropped == 1
    assert profiler.samples_taken == 0
    # Uncontended, the same sample is recorded normally.
    profiler._on_signal(0, frame)
    assert profiler.samples_taken == 1


def test_auto_mode_resolves_on_main_thread():
    profiler = SamplingProfiler(interval=0.001, mode="auto")
    with profiler:
        _spin(0.02)
    expected = "signal" if hasattr(signal, "setitimer") else "thread"
    assert profiler._resolved_mode == expected


# -- trace attribution -------------------------------------------------------
def test_tagged_thread_samples_attributed_to_trace():
    stop = threading.Event()

    def worker():
        with tagged("trace-abc"):
            _spin(5.0, stop)

    thread = threading.Thread(target=worker)
    with SamplingProfiler(interval=0.001, mode="thread") as profiler:
        thread.start()
        _spin(0.15)
    stop.set()
    thread.join()

    slice_ = profiler.folded(trace_id="trace-abc")
    assert slice_, "no samples attributed to the tagged trace"
    assert all(not stack.startswith("trace:") for stack in slice_)
    # In the combined view the same samples are rooted under trace:<id>.
    combined = profiler.folded()
    assert any(stack.startswith("trace:trace-abc;") for stack in combined)
    # An unknown trace id yields an empty slice, not an error.
    assert profiler.folded(trace_id="nope") == {}


def test_tagged_none_is_noop():
    ident = threading.get_ident()
    with tagged(None):
        from repro.obs.profiler import _THREAD_TRACES

        assert ident not in _THREAD_TRACES
    tag_thread("x")
    untag_thread()
    untag_thread()  # idempotent


# -- output ------------------------------------------------------------------
def test_write_folded_emits_stack_count_lines(tmp_path):
    with SamplingProfiler(interval=0.001, mode="thread") as profiler:
        _spin(0.08)
    path = str(tmp_path / "out.folded")
    lines_written = profiler.write_folded(path)
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == lines_written > 0
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack, line
        assert int(count) >= 1
        # folded format: semicolon-joined frames, root first
        assert all(frame for frame in stack.split(";"))


def test_max_unique_stacks_overflow_goes_to_truncated_bucket():
    profiler = SamplingProfiler(mode="thread", max_unique_stacks=1)

    class _Code:
        co_filename = "f.py"

    class _Frame:
        f_back = None

        def __init__(self, name):
            self.f_code = _Code()
            self.f_code = type("C", (), {"co_filename": "f.py", "co_name": name})()

    profiler._record(0, _Frame("a"))
    profiler._record(0, _Frame("b"))
    profiler._record(0, _Frame("c"))
    folded = profiler.folded()
    assert folded.get("(truncated)") == 2
    assert folded.get("f.py:a") == 1
