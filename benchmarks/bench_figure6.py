"""Figure 6 benchmark: the timing comparison LICM vs Monte Carlo (k = 4
at bench scale; the paper uses k = 8).

Three benchmarks per (scheme, query): L-model (encoding), the LICM answer
(L-query + L-solve), and the MC baseline, mirroring the paper's stacked
bars.  Run with::

    pytest benchmarks/bench_figure6.py --benchmark-only
"""

from __future__ import annotations

import pytest

SCHEMES = ("km", "k-anonymity", "bipartite")
QUERIES = ("Q1", "Q2", "Q3")
K = 4


@pytest.mark.parametrize("scheme", SCHEMES)
def test_model_phase(benchmark, context, scheme):
    """L-model: anonymized data -> LICM database."""

    def encode():
        context._encodings.pop((scheme, K), None)
        return context.encoding(scheme, K)

    record = benchmark.pedantic(encode, rounds=2, iterations=1)
    stats = record.encoded.stats
    benchmark.extra_info["variables"] = stats["variables"]
    benchmark.extra_info["constraints"] = stats["constraints"]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("query", QUERIES)
def test_licm_phase(benchmark, context, scheme, query):
    """L-query + L-solve for one query."""
    context.encoding(scheme, K)
    answer = benchmark.pedantic(
        lambda: context.licm_answer(query, scheme, K), rounds=2, iterations=1
    )
    benchmark.extra_info["query_time"] = round(answer.query_time, 4)
    benchmark.extra_info["solve_time"] = round(answer.solve_time, 4)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("query", QUERIES)
def test_mc_phase(benchmark, context, scheme, query):
    """The MC baseline (10 sampled worlds at bench scale)."""
    context.encoding(scheme, K)
    result = benchmark.pedantic(
        lambda: context.mc_answer(query, scheme, K), rounds=2, iterations=1
    )
    benchmark.extra_info["observed_min"] = result.minimum
    benchmark.extra_info["observed_max"] = result.maximum
