"""Prometheus text-exposition correctness: ordering, escaping, histograms.

These tests pin the exposition *format* — what an actual Prometheus
scraper parses — not just our own round-trip: HELP-before-TYPE-before-
samples per family, label escaping, cumulative (monotone) ``le`` buckets,
``+Inf`` == ``_count``, and the OpenMetrics exemplar suffix.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.export import Exemplar, MetricsRegistry, render_registries


def _families(text: str) -> dict:
    """Split exposition text into {metric_name: [lines]} by HELP headers."""
    families: dict = {}
    current = None
    for line in text.splitlines():
        match = re.match(r"# HELP (\S+) ", line)
        if match:
            current = match.group(1)
            families[current] = []
        assert current is not None, f"sample before any HELP: {line!r}"
        families[current].append(line)
    return families


# -- family structure --------------------------------------------------------
def test_help_then_type_then_samples_per_family():
    registry = MetricsRegistry()
    registry.counter("a_total", "counter a").inc(1)
    registry.gauge("b", "gauge b").set(2)
    registry.histogram("c_seconds", "hist c").observe(0.2)
    for name, lines in _families(registry.render()).items():
        assert lines[0].startswith(f"# HELP {name} ")
        assert lines[1].startswith(f"# TYPE {name} ")
        assert len(lines) > 2, f"{name} has no samples"
        for sample in lines[2:]:
            assert not sample.startswith("#")
            assert sample.split("{")[0].split(" ")[0].startswith(name)


def test_families_render_in_sorted_name_order():
    registry = MetricsRegistry()
    registry.gauge("zzz", "").set(1)
    registry.gauge("aaa", "").set(1)
    names = list(_families(registry.render()))
    assert names == sorted(names)


def test_type_lines_match_instrument_kind():
    registry = MetricsRegistry()
    registry.counter("c", "").inc()
    registry.gauge("g", "").set(0)
    registry.histogram("h", "").observe(1)
    text = registry.render()
    assert "# TYPE repro_c counter" in text
    assert "# TYPE repro_g gauge" in text
    assert "# TYPE repro_h histogram" in text


def test_registering_same_name_as_other_kind_raises():
    registry = MetricsRegistry()
    registry.gauge("dual", "")
    with pytest.raises(TypeError, match="already registered as gauge"):
        registry.histogram("dual", "")


# -- label escaping ----------------------------------------------------------
def test_label_values_escape_quotes_backslashes_newlines():
    registry = MetricsRegistry()
    registry.counter("esc_total", "").inc(
        1, labels={"q": 'say "hi"', "b": "a\\b", "n": "line1\nline2"}
    )
    line = [
        l for l in registry.render().splitlines() if l.startswith("repro_esc_total{")
    ][0]
    assert 'q="say \\"hi\\""' in line
    assert 'b="a\\\\b"' in line
    assert 'n="line1\\nline2"' in line


def test_labels_render_sorted_and_stable():
    registry = MetricsRegistry()
    registry.gauge("lbl", "").set(1, labels={"zeta": "1", "alpha": "2"})
    line = [l for l in registry.render().splitlines() if l.startswith("repro_lbl{")][0]
    assert line.index('alpha="2"') < line.index('zeta="1"')


# -- histogram correctness ---------------------------------------------------
def _bucket_counts(lines, name):
    out = []
    for line in lines:
        match = re.match(rf"{name}_bucket{{.*le=\"([^\"]+)\".*}} (\d+)", line)
        if match:
            out.append((match.group(1), int(match.group(2))))
    return out


def test_bucket_counts_cumulative_and_monotone():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(0.1, 0.5, 1.0))
    for value in (0.05, 0.05, 0.3, 0.7, 2.0):
        hist.observe(value)
    lines = registry.render().splitlines()
    buckets = _bucket_counts(lines, "repro_lat")
    assert [b for b, _ in buckets] == ["0.1", "0.5", "1", "+Inf"]
    counts = [c for _, c in buckets]
    assert counts == [2, 3, 4, 5]
    assert counts == sorted(counts), "le buckets must be monotonically non-decreasing"


def test_inf_bucket_equals_count_and_sum_consistent():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(1.0,))
    observations = (0.5, 1.5, 100.0)
    for value in observations:
        hist.observe(value)
    text = registry.render()
    inf = int(re.search(r'repro_lat_bucket{le="\+Inf"} (\d+)', text).group(1))
    count = int(re.search(r"repro_lat_count (\d+)", text).group(1))
    total = float(re.search(r"repro_lat_sum (\S+)", text).group(1))
    assert inf == count == len(observations)
    assert total == pytest.approx(sum(observations))


def test_labelled_histogram_series_are_independent():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(1.0,))
    hist.observe(0.5, labels={"status": "ok"})
    hist.observe(2.0, labels={"status": "degraded"})
    text = registry.render()
    assert re.search(r'repro_lat_bucket{status="ok",le="1"} 1', text)
    assert re.search(r'repro_lat_bucket{status="degraded",le="1"} 0', text)
    assert re.search(r'repro_lat_count{status="ok"} 1', text)


def test_inf_renders_as_plus_inf_value():
    registry = MetricsRegistry()
    registry.gauge("g", "").set(math.inf)
    assert "repro_g +Inf" in registry.render()


# -- exemplars (OpenMetrics only) --------------------------------------------
def test_exemplar_attached_to_landing_bucket_only():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(0.1, 1.0))
    hist.observe(0.5, exemplar={"trace_id": "abc123"})
    lines = registry.render(fmt="openmetrics").splitlines()
    marked = [l for l in lines if "# {" in l]
    assert len(marked) == 1
    line = marked[0]
    assert 'le="1"' in line  # 0.5 lands in (0.1, 1.0]
    assert re.search(r'# \{trace_id="abc123"\} 0\.5 \d+\.\d{3}$', line)


def test_exemplar_lands_in_inf_bucket_past_last_bound():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(0.1,))
    hist.observe(5.0, exemplar={"trace_id": "t"})
    marked = [
        l for l in registry.render(fmt="openmetrics").splitlines() if "# {" in l
    ]
    assert len(marked) == 1
    assert 'le="+Inf"' in marked[0]


def test_newest_exemplar_replaces_older_in_same_bucket():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(1.0,))
    hist.observe(0.2, exemplar={"trace_id": "old"})
    hist.observe(0.3, exemplar={"trace_id": "new"})
    text = registry.render(fmt="openmetrics")
    assert 'trace_id="new"' in text
    assert 'trace_id="old"' not in text


def test_default_text_render_has_no_exemplars():
    """Exemplars are illegal in the 0.0.4 text format — a plain scrape
    carrying them breaks a real Prometheus parser."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(1.0,))
    hist.observe(0.2, exemplar={"trace_id": "t"})
    assert "# {" not in registry.render()
    assert "# {" not in "\n".join(hist.render())


def test_exemplar_render_format():
    mark = Exemplar({"trace_id": "t1"}, 0.25, timestamp=1700000000.1234)
    assert mark.render() == '# {trace_id="t1"} 0.25 1700000000.123'


def test_unexemplared_observations_render_bare():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "", buckets=(1.0,))
    hist.observe(0.2)
    assert "# {" not in registry.render(fmt="openmetrics")


# -- OpenMetrics conformance -------------------------------------------------
def test_openmetrics_render_ends_with_eof():
    registry = MetricsRegistry()
    registry.gauge("g", "").set(1)
    assert registry.render(fmt="openmetrics").endswith("# EOF\n")
    assert "# EOF" not in registry.render()


def test_openmetrics_counter_family_drops_total_suffix():
    registry = MetricsRegistry()
    registry.counter("hits_total", "hits").inc(3)
    text = registry.render(fmt="openmetrics")
    assert "# TYPE repro_hits counter" in text
    assert "repro_hits_total 3" in text
    # The 0.0.4 text format keeps the full name in HELP/TYPE.
    assert "# TYPE repro_hits_total counter" in registry.render()


def test_openmetrics_counter_without_total_gets_sample_suffix():
    registry = MetricsRegistry()
    registry.counter("hits", "hits").inc(2)
    text = registry.render(fmt="openmetrics")
    assert "# TYPE repro_hits counter" in text
    assert "repro_hits_total 2" in text


def test_render_rejects_unknown_fmt():
    with pytest.raises(ValueError, match="text.*openmetrics"):
        MetricsRegistry().render(fmt="protobuf")


def test_profiler_export_includes_dropped_samples_counter():
    """A scrape must surface ``repro_profiler_samples_dropped_total`` —
    silent sample loss would quietly bias every flame graph."""
    from repro.obs.profiler import SamplingProfiler, export_metrics

    profiler = SamplingProfiler(interval=0.005)
    profiler.samples_taken = 7
    profiler.samples_dropped = 2
    registry = MetricsRegistry()
    export_metrics(registry, profiler=profiler)
    text = registry.render()
    assert "repro_profiler_samples_total 7" in text
    assert "repro_profiler_samples_dropped_total 2" in text

    # no active profiler ⇒ the families are simply absent, not zeroed
    empty = MetricsRegistry()
    export_metrics(empty)
    assert "profiler_samples" not in empty.render()


def test_render_registries_single_eof_across_registries():
    first, second = MetricsRegistry(), MetricsRegistry(prefix="other")
    first.gauge("a", "").set(1)
    second.histogram("b", "", buckets=(1.0,)).observe(0.2, exemplar={"trace_id": "t"})
    text = render_registries((first, second), fmt="openmetrics")
    assert text.count("# EOF") == 1
    assert text.endswith("# EOF\n")
    assert 'trace_id="t"' in text
    plain = render_registries((first, second))
    assert "# EOF" not in plain
    assert "# {" not in plain


# -- the per-reason prune counter (repro_bb_prunes_total) --------------------
def test_prune_reason_counter_renders_one_series_per_reason():
    """The shape ``_observe_search`` emits: one counter family with a
    ``reason`` label per prune mechanism, each its own monotone series."""
    from repro.obs.explain import PRUNE_REASONS

    registry = MetricsRegistry()
    counter = registry.counter("bb_prunes_total", "prunes by reason")
    for amount, reason in enumerate(PRUNE_REASONS, start=1):
        counter.inc(amount, labels={"reason": reason})
    lines = [
        line
        for line in registry.render().splitlines()
        if line.startswith("repro_bb_prunes_total{")
    ]
    assert len(lines) == len(PRUNE_REASONS)
    seen = {}
    for line in lines:
        match = re.match(r'repro_bb_prunes_total\{reason="([^"]+)"\} (\d+)', line)
        assert match, line
        seen[match.group(1)] = int(match.group(2))
    assert seen == {
        reason: amount for amount, reason in enumerate(PRUNE_REASONS, start=1)
    }
    # incrementing one reason never disturbs its siblings
    counter.inc(10, labels={"reason": PRUNE_REASONS[0]})
    text = registry.render()
    assert f'reason="{PRUNE_REASONS[0]}"}} 11' in text
    assert f'reason="{PRUNE_REASONS[1]}"}} 2' in text
