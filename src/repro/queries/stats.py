"""Table statistics for the LICM plan estimator.

The defaults in :mod:`repro.queries.estimate` are System-R-style magic
constants; this module computes real statistics from LICM relations —
per-column distinct counts, value ranges and equi-width histograms over
the *possible* rows, plus the certain/possible row interval — and exposes
a statistics-aware selectivity function and join-key distinct counts the
estimator consumes when given a :class:`StatsCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.relation import LICMRelation
from repro.errors import QueryError
from repro.relational.predicates import (
    And,
    Between,
    Compare,
    InSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

HISTOGRAM_BUCKETS = 16


@dataclass
class ColumnStats:
    """Statistics of one attribute over a relation's possible rows."""

    distinct: int
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    #: equi-width bucket counts over [minimum, maximum] (numeric columns)
    histogram: Optional[list[int]] = None
    total: int = 0

    def range_fraction(self, lo, hi) -> float:
        """Estimated fraction of rows with value in [lo, hi]."""
        if self.total == 0:
            return 0.0
        if self.histogram is None or self.minimum is None or self.maximum is None:
            return 1 / 3  # non-numeric fallback
        if hi < self.minimum or lo > self.maximum:
            return 0.0
        if self.maximum == self.minimum:
            return 1.0 if lo <= self.minimum <= hi else 0.0
        width = (self.maximum - self.minimum) / len(self.histogram)
        count = 0.0
        for bucket, bucket_count in enumerate(self.histogram):
            b_lo = self.minimum + bucket * width
            b_hi = b_lo + width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if overlap > 0 or (b_lo <= lo <= b_hi and lo == hi):
                fraction = overlap / width if width else 1.0
                if lo == hi:
                    fraction = min(1.0, 1.0 / max(width, 1.0))
                count += bucket_count * min(1.0, fraction)
        return min(1.0, count / self.total)

    def equality_fraction(self) -> float:
        """Estimated fraction matched by ``attr == value`` (uniform)."""
        return 1.0 / self.distinct if self.distinct else 0.0


@dataclass
class TableStats:
    """Statistics for one relation."""

    certain_rows: int
    possible_rows: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)


def collect_stats(relation: LICMRelation, buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
    """Scan one LICM relation and build its statistics."""
    certain = sum(1 for row in relation.rows if row.certain)
    columns: Dict[str, ColumnStats] = {}
    for position, attribute in enumerate(relation.attributes):
        values = [row.values[position] for row in relation.rows]
        distinct = len(set(values))
        numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if numeric and len(numeric) == len(values):
            lo, hi = min(numeric), max(numeric)
            histogram = [0] * buckets
            span = (hi - lo) or 1.0
            for value in numeric:
                bucket = min(buckets - 1, int((value - lo) / span * buckets))
                histogram[bucket] += 1
            columns[attribute] = ColumnStats(
                distinct=distinct,
                minimum=float(lo),
                maximum=float(hi),
                histogram=histogram,
                total=len(values),
            )
        else:
            columns[attribute] = ColumnStats(distinct=distinct, total=len(values))
    return TableStats(
        certain_rows=certain, possible_rows=len(relation.rows), columns=columns
    )


class StatsCatalog:
    """Per-table statistics, built lazily from LICM relations."""

    def __init__(self, relations: Dict[str, LICMRelation]):
        self._relations = relations
        self._cache: Dict[str, TableStats] = {}

    def table(self, name: str) -> TableStats:
        if name not in self._cache:
            try:
                relation = self._relations[name]
            except KeyError:
                raise QueryError(f"no relation {name!r} in the catalog") from None
            self._cache[name] = collect_stats(relation)
        return self._cache[name]

    def column(self, table: str, attribute: str) -> Optional[ColumnStats]:
        return self.table(table).columns.get(attribute)


def stats_selectivity(
    predicate: Predicate, columns: Dict[str, ColumnStats]
) -> float:
    """Selectivity of a predicate using the available column statistics;
    falls back to the estimator's defaults for unknown columns."""
    from repro.queries.estimate import predicate_selectivity

    if isinstance(predicate, Compare):
        stats = columns.get(predicate.attribute)
        if stats is None:
            return predicate_selectivity(predicate)
        if predicate.op == "==":
            return stats.equality_fraction()
        if predicate.op == "!=":
            return 1.0 - stats.equality_fraction()
        if stats.minimum is not None and isinstance(predicate.value, (int, float)):
            value = float(predicate.value)
            if predicate.op in ("<", "<="):
                return stats.range_fraction(stats.minimum, value)
            return stats.range_fraction(value, stats.maximum)
        return predicate_selectivity(predicate)
    if isinstance(predicate, Between):
        stats = columns.get(predicate.attribute)
        if stats is None or stats.minimum is None:
            return predicate_selectivity(predicate)
        return stats.range_fraction(float(predicate.lo), float(predicate.hi))
    if isinstance(predicate, InSet):
        stats = columns.get(predicate.attribute)
        if stats is None:
            return predicate_selectivity(predicate)
        return min(1.0, len(predicate.values) * stats.equality_fraction())
    if isinstance(predicate, And):
        out = 1.0
        for part in predicate.parts:
            out *= stats_selectivity(part, columns)
        return out
    if isinstance(predicate, Or):
        out = 0.0
        for part in predicate.parts:
            s = stats_selectivity(part, columns)
            out = out + s - out * s
        return out
    if isinstance(predicate, Not):
        return 1.0 - stats_selectivity(predicate.inner, columns)
    if isinstance(predicate, TruePredicate):
        return 1.0
    from repro.queries.estimate import predicate_selectivity as fallback

    return fallback(predicate)
