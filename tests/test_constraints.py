"""Unit tests for LinearConstraint normalization and ConstraintStore."""

import pytest

from repro.core.constraints import ConstraintStore, LinearConstraint
from repro.core.variables import VariablePool
from repro.errors import ConstraintError


@pytest.fixture
def pool():
    return VariablePool()


def test_normal_form_folds_constant(pool):
    a, b = pool.new(), pool.new()
    constraint = a + b + 3 <= 5
    assert constraint.terms == ((1, a.index), (1, b.index))
    assert constraint.rhs == 2


def test_duplicate_terms_merged():
    constraint = LinearConstraint([(1, 0), (2, 0), (1, 1)], "<=", 4)
    assert constraint.terms == ((3, 0), (1, 1))


def test_zero_coefficient_dropped():
    constraint = LinearConstraint([(1, 0), (-1, 0)], ">=", 0)
    assert constraint.terms == ()


def test_bad_operator_rejected():
    with pytest.raises(ConstraintError):
        LinearConstraint([(1, 0)], "<", 1)


def test_non_integer_rhs_rejected():
    with pytest.raises(ConstraintError):
        LinearConstraint([(1, 0)], "<=", 1.5)


def test_satisfied_by(pool):
    a, b = pool.new(), pool.new()
    constraint = a + b >= 1
    assert constraint.satisfied_by({a.index: 1, b.index: 0})
    assert not constraint.satisfied_by({a.index: 0, b.index: 0})
    equality = (a + b).eq(1)
    assert equality.satisfied_by({a.index: 0, b.index: 1})
    assert not equality.satisfied_by({a.index: 1, b.index: 1})


def test_activity_bounds_and_trivialities():
    constraint = LinearConstraint([(2, 0), (-1, 1)], "<=", 5)
    assert constraint.activity_bounds() == (-1, 2)
    assert constraint.is_trivially_true()
    assert not constraint.is_trivially_false()
    impossible = LinearConstraint([(1, 0)], ">=", 2)
    assert impossible.is_trivially_false()


def test_constraint_equality_and_hash(pool):
    a, b = pool.new(), pool.new()
    c1 = a + b <= 1
    c2 = b + a <= 1
    assert c1 == c2
    assert hash(c1) == hash(c2)


def test_repr_round_readability(pool):
    a, b = pool.new(), pool.new()
    assert "b[0]" in repr(a + 2 * b <= 3)


def test_store_indexes_by_variable(pool):
    a, b, c = pool.new(), pool.new(), pool.new()
    store = ConstraintStore()
    store.add(a + b >= 1)
    store.add(b + c <= 1)
    assert len(store) == 2
    assert len(store.constraints_on(b.index)) == 2
    assert len(store.constraints_on(a.index)) == 1
    assert store.constraints_on(99) == []


def test_store_rejects_non_constraints():
    store = ConstraintStore()
    with pytest.raises(ConstraintError):
        store.add(True)  # the classic 'b == x' identity mistake


def test_store_copy_is_independent(pool):
    a = pool.new()
    store = ConstraintStore()
    store.add(a >= 1)
    clone = store.copy()
    clone.add(a <= 0)
    assert len(store) == 1
    assert len(clone) == 2


def test_store_preserves_order(pool):
    a, b = pool.new(), pool.new()
    first = a >= 0
    second = b >= 0
    store = ConstraintStore()
    store.extend([first, second])
    assert store[0] == first
    assert store[1] == second
    assert list(store) == [first, second]
