"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a separator line under the header."""
    rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}"
