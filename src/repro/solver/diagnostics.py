"""Infeasibility diagnostics: minimal conflicting constraint sets.

When an LICM database admits no possible world — a modeling bug, or
inconsistent side information — the useful answer is *which constraints
conflict*.  This implements the classical deletion filter: repeatedly try
dropping each constraint; if the rest stays infeasible the constraint is
redundant to the conflict and is removed, otherwise it is pinned.  The
result is an irreducible infeasible subsystem (IIS): every constraint in
it is necessary for the infeasibility.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.solver.model import BIPConstraint, BIPProblem
from repro.solver.propagation import FREE, CompiledConstraints, propagate


def _feasible(
    constraints: List[BIPConstraint],
    num_vars: int,
    deadline_at: Optional[float] = None,
) -> bool:
    """Cheap feasibility: propagation, then exhaustive search on small
    residues, else LP + a few branchings via the solve facade."""
    problem = BIPProblem(num_vars=num_vars, constraints=list(constraints), objective={})
    domains = propagate(CompiledConstraints(problem), [FREE] * num_vars)
    if domains is None:
        return False
    from repro.solver.interface import solve
    from repro.solver.result import SolverOptions

    options = SolverOptions(backend="bb", cut_rounds=0)
    if deadline_at is not None:
        remaining = max(deadline_at - time.monotonic(), 0.05)
        import dataclasses

        options = dataclasses.replace(options, time_limit=remaining)
    solution = solve(problem, "max", options)
    return solution.status != "infeasible"


def find_iis(
    problem: BIPProblem, time_budget: Optional[float] = None
) -> Optional[List[BIPConstraint]]:
    """An irreducible infeasible subsystem, or ``None`` if feasible.

    Deletion filter: O(m) feasibility checks.  Binary variables' implicit
    bounds are always part of the system (never reported).

    ``time_budget`` (seconds) bounds the filter: on expiry the current
    kept set is returned.  That set is still *infeasible* (every removal
    so far preserved infeasibility) but may not be irreducible — a sound,
    best-effort conflict set rather than a minimal one.
    """
    deadline_at = None if time_budget is None else time.monotonic() + time_budget
    constraints = list(problem.constraints)
    if _feasible(constraints, problem.num_vars, deadline_at):
        return None
    kept = list(constraints)
    index = 0
    while index < len(kept):
        if deadline_at is not None and time.monotonic() >= deadline_at:
            break
        trial = kept[:index] + kept[index + 1 :]
        if not _feasible(trial, problem.num_vars, deadline_at):
            kept = trial  # still infeasible without it: not needed
        else:
            index += 1  # necessary for the conflict: pin it
    return kept


def render_constraints(
    constraints: List[BIPConstraint], names: List[str]
) -> List[str]:
    """Render constraints as human-readable strings using variable names."""
    rendered = []
    for constraint in constraints:
        label = " + ".join(f"{coef}*{names[idx]}" for coef, idx in constraint.terms)
        op = "=" if constraint.op == "==" else constraint.op
        rendered.append(f"{label} {op} {constraint.rhs}")
    return rendered


def explain_infeasibility(
    model, names: bool = True, time_budget: Optional[float] = None
) -> Optional[List[str]]:
    """IIS over an LICM model's constraint store, rendered as strings.

    Returns ``None`` when the model has at least one possible world.
    """
    from repro.solver.model import from_licm
    from repro.core.linexpr import LinearExpr

    problem, _dense = from_licm(LinearExpr({}, 0), list(model.constraints))
    iis = find_iis(problem, time_budget=time_budget)
    if iis is None:
        return None
    return render_constraints(iis, problem.names)
