"""The estimator contract: cheap, provably valid bounds on a BIP optimum.

A :class:`BoundEstimator` answers one direction of one prepared component
*without* running the exact branch-and-cut: for ``sense="max"`` it returns
an **upper** bound on the true maximum, for ``sense="min"`` a **lower**
bound on the true minimum.  The pair of directions therefore yields an
outer interval that is guaranteed to contain the exact ``[min, max]``
aggregate range — wider, never narrower.  That one-sided soundness
contract is what lets the :class:`~repro.estimator.tiered.TieredAnswerer`
intersect the intervals of several tiers (the intersection of valid outer
intervals is itself a valid outer interval) and serve them at
``precision=fast`` without ever inventing an answer outside the paper's
possible-world range.

Every result carries a ``validity`` proof tag (the one-line argument for
why the bound is sound — surfaced in docs/estimators.md and the slow-query
ring) and a ``cost`` class so policies can order tiers cheapest-first
without hard-coding estimator names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

#: Cost classes, cheapest first.  ``COST_ORDER`` gives the sort key.
COST_TRIVIAL = "trivial"  # closed-form arithmetic over the coefficients
COST_CHEAP = "cheap"  # one pass with sorting, still no LP or search
COST_LP = "lp"  # one LP relaxation per (component, sense)
COST_EXACT = "exact"  # the full branch-and-cut (not an estimator tier)

COST_ORDER = (COST_TRIVIAL, COST_CHEAP, COST_LP, COST_EXACT)

#: EstimateResult statuses.
ESTIMATE_BOUNDED = "bounded"  # ``bound`` is a valid one-sided bound
ESTIMATE_INFEASIBLE = "infeasible"  # a single row alone admits no 0/1 point
ESTIMATE_UNAVAILABLE = "unavailable"  # this tier cannot bound this problem


@dataclass(frozen=True)
class EstimateResult:
    """One direction of one component, answered by one tier.

    ``bound`` is an upper bound on the maximum when ``sense="max"`` and a
    lower bound on the minimum when ``sense="min"`` (``None`` unless
    ``status == "bounded"``).  ``validity`` names the soundness argument;
    ``cost`` is the tier's cost class; ``seconds`` is the wall time this
    estimate took.
    """

    sense: str
    bound: Optional[float]
    status: str
    tier: str
    validity: str
    cost: str
    seconds: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def bounded(self) -> bool:
        return self.status == ESTIMATE_BOUNDED and self.bound is not None


@runtime_checkable
class BoundEstimator(Protocol):
    """The swappable tier interface.

    ``estimate`` accepts a prepared component — anything carrying a
    ``problem`` attribute holding a :class:`~repro.solver.model.BIPProblem`
    (e.g. :class:`~repro.engine.session.PreparedComponent`), or a bare
    ``BIPProblem`` — and one sense, and returns an :class:`EstimateResult`
    whose bound satisfies the one-sided soundness contract above.
    Estimators are stateless and thread-safe; any memoization happens in
    the policy layer, per request, never in the shared solve caches.
    """

    name: str
    cost: str
    validity: str

    def estimate(self, prepared_component, sense: str) -> EstimateResult:
        ...


def component_problem(prepared_component):
    """Unwrap a prepared component (or accept a bare BIPProblem)."""
    return getattr(prepared_component, "problem", prepared_component)


def free_bound(problem, sense: str) -> float:
    """The constraint-free bound: every variable takes its best value.

    Sound for any 0/1 program because dropping every constraint only
    enlarges the feasible set.  Includes the objective constant.
    """
    coefs = problem.objective.values()
    if sense == "max":
        return float(problem.objective_constant + sum(c for c in coefs if c > 0))
    return float(problem.objective_constant + sum(c for c in coefs if c < 0))


__all__ = [
    "BoundEstimator",
    "EstimateResult",
    "COST_TRIVIAL",
    "COST_CHEAP",
    "COST_LP",
    "COST_EXACT",
    "COST_ORDER",
    "ESTIMATE_BOUNDED",
    "ESTIMATE_INFEASIBLE",
    "ESTIMATE_UNAVAILABLE",
    "component_problem",
    "free_bound",
]
