"""Unit tests for implicit lineage tracing."""

from repro.core.database import LICMModel
from repro.core.lineage import base_tuples, direct_parents, trace
from repro.core.operators import licm_intersect
from helpers import fig3_models


def test_direct_parents_respect_creation_order():
    model = LICMModel()
    a, b = model.new_vars(2)
    derived = model.new_var()
    model.add(derived - a <= 0)
    model.add(derived - b <= 0)
    assert direct_parents(model.constraints, derived.index) == {a.index, b.index}
    # A base variable has no parents among *earlier* variables.
    assert direct_parents(model.constraints, a.index) == set()


def test_trace_intersection_lineage():
    """Figure 3: b5's lineage is exactly {b1, b3} (plus b2 via R1's base
    cardinality constraint on b1)."""
    model, r1, r2, v = fig3_models()
    result = licm_intersect(r1, r2)
    b5 = next(row.ext for row in result.rows if row.values == ("T1", "wine"))
    lineage = trace(model.constraints, b5)
    assert v["b1"].index in lineage.all_variables
    assert v["b3"].index in lineage.all_variables
    assert b5.index in lineage.parents
    assert lineage.parents[b5.index] == {v["b1"].index, v["b3"].index}


def test_trace_reaches_base_variables():
    model = LICMModel()
    a = model.new_var()
    b = model.new_var()
    c = model.new_var()
    model.add(b - a <= 0)
    model.add(c - b <= 0)
    lineage = trace(model.constraints, c)
    assert lineage.base_variables == {a.index}
    assert lineage.all_variables == {a.index, b.index, c.index}


def test_base_tuples_maps_back_to_rows():
    model, r1, r2, v = fig3_models()
    result = licm_intersect(r1, r2)
    b5 = next(row.ext for row in result.rows if row.values == ("T1", "wine"))
    origins = base_tuples(model, b5, [r1, r2])
    names = {(name, row.values) for name, row in origins}
    assert ("R1", ("T1", "wine")) in names
    assert ("R2", ("T1", "wine")) in names


def test_unconstrained_variable_is_its_own_base():
    model = LICMModel()
    a = model.new_var()
    lineage = trace(model.constraints, a)
    assert lineage.base_variables == {a.index}
    assert lineage.parents == {}
