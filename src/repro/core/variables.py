"""Binary existence variables and the pool that owns them.

Every maybe-tuple in an LICM relation carries a :class:`BoolVar` in its
``Ext`` attribute (Definition 2 of the paper).  Variables are created by a
:class:`VariablePool`, which assigns them dense integer indices; the solver
stack and the pruning pass address variables purely by index, so all other
structures (constraints, objectives, assignments) are small integer maps.

Variables support arithmetic (``b1 + b2 - 1``, ``3 * b``) producing
:class:`~repro.core.linexpr.LinearExpr` objects, and comparisons producing
:class:`~repro.core.constraints.LinearConstraint` objects, so constraints can
be written the way the paper writes them::

    model.add(b1 + b2 + b3 >= 1)
"""

from __future__ import annotations

from typing import Iterator, Optional


class BoolVar:
    """A binary {0, 1} decision variable.

    Instances are created through :meth:`VariablePool.new`; they are
    hashable, compared by identity of ``(pool_id, index)``, and usable
    directly in linear expressions.
    """

    __slots__ = ("index", "name", "pool_id")

    def __init__(self, index: int, name: str, pool_id: int):
        self.index = index
        self.name = name
        self.pool_id = pool_id

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash((self.pool_id, self.index))

    def __eq__(self, other) -> bool:
        if isinstance(other, BoolVar):
            return self.pool_id == other.pool_id and self.index == other.index
        return NotImplemented

    # -- arithmetic: delegate to LinearExpr -------------------------------
    def _expr(self):
        from repro.core.linexpr import LinearExpr

        return LinearExpr({self.index: 1}, 0, pool_id=self.pool_id)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1 * self._expr()) + other

    def __mul__(self, other):
        return self._expr() * other

    __rmul__ = __mul__

    def __neg__(self):
        return -1 * self._expr()

    # -- comparisons: build constraints -----------------------------------
    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def eq(self, other):
        """Build an equality constraint (``==`` is reserved for identity)."""
        return self._expr().eq(other)


class VariablePool:
    """Factory and registry for the binary variables of one LICM model.

    The pool assigns dense indices ``0..n-1`` so that solver vectors and
    assignments can be plain arrays.  Auto-generated names follow the
    paper's ``b1, b2, ...`` convention.
    """

    _next_pool_id = 0

    def __init__(self):
        self._vars: list[BoolVar] = []
        self.pool_id = VariablePool._next_pool_id
        VariablePool._next_pool_id += 1

    def new(self, name: Optional[str] = None) -> BoolVar:
        """Create a fresh binary variable.

        :param name: optional human-readable name; defaults to ``b<k>``
            with ``k`` counting from 1 as in the paper's figures.
        """
        index = len(self._vars)
        if name is None:
            name = f"b{index + 1}"
        var = BoolVar(index, name, self.pool_id)
        self._vars.append(var)
        return var

    def new_many(self, count: int, prefix: str = "b") -> list[BoolVar]:
        """Create ``count`` fresh variables named ``<prefix><k>``."""
        start = len(self._vars)
        return [self.new(f"{prefix}{start + i + 1}") for i in range(count)]

    def get(self, index: int) -> BoolVar:
        """Return the variable with the given dense index."""
        return self._vars[index]

    def __len__(self) -> int:
        return len(self._vars)

    def __iter__(self) -> Iterator[BoolVar]:
        return iter(self._vars)

    def __contains__(self, var: BoolVar) -> bool:
        return (
            isinstance(var, BoolVar)
            and var.pool_id == self.pool_id
            and 0 <= var.index < len(self._vars)
        )
