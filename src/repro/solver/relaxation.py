"""LP relaxation of a BIP under branch fixings.

Two engines: SciPy's HiGHS ``linprog`` (default, fast, sparse) and the
from-scratch dense simplex in :mod:`repro.solver.simplex` (ablation and
cross-check).  Both maximize; the branch-and-bound negates for minimization.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.solver.model import BIPProblem
from repro.solver.propagation import FREE, ONE, ZERO


def _bounds_from_domains(domains: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    lower = np.zeros(len(domains))
    upper = np.ones(len(domains))
    for idx, state in enumerate(domains):
        if state == ZERO:
            upper[idx] = 0.0
        elif state == ONE:
            lower[idx] = 1.0
    return lower, upper


def solve_relaxation(
    problem: BIPProblem,
    domains: Sequence[int],
    engine: str = "highs",
) -> Tuple[str, float, Optional[np.ndarray]]:
    """Maximize the LP relaxation with variables boxed by branch domains.

    Returns ``(status, objective_value, x)`` — objective value *includes*
    the problem's objective constant.
    """
    lower, upper = _bounds_from_domains(domains)
    if engine == "simplex":
        return _solve_simplex(problem, lower, upper)
    if engine == "highs":
        return _solve_highs(problem, lower, upper)
    raise SolverError(f"unknown LP engine {engine!r}")


def relaxation_bound(
    problem: BIPProblem,
    sense: str = "max",
    engine: str = "highs",
) -> Tuple[str, float]:
    """A valid one-sided bound on the 0/1 optimum from the pure relaxation.

    All variables are left free in ``[0, 1]`` (no branch fixings, no
    integrality), so the LP optimum dominates the integer optimum in the
    requested direction: an upper bound for ``sense="max"``, a lower
    bound for ``sense="min"`` (via the negated objective).  Because the
    BIP objective and constant are integral, the fractional value is
    rounded inward — still sound, often exact.  Returns
    ``(status, bound)``; the bound is meaningful only when ``status`` is
    ``"optimal"``.
    """
    if problem.num_vars == 0:
        return "optimal", float(problem.objective_constant)
    domains = [FREE] * problem.num_vars
    if sense == "max":
        status, value, _ = solve_relaxation(problem, domains, engine)
        if status != "optimal":
            return status, 0.0
        return status, float(np.floor(value + 1e-9))
    negated = BIPProblem(
        num_vars=problem.num_vars,
        constraints=list(problem.constraints),
        objective={idx: -coef for idx, coef in problem.objective.items()},
        objective_constant=-problem.objective_constant,
        names=list(problem.names),
    )
    status, value, _ = solve_relaxation(negated, domains, engine)
    if status != "optimal":
        return status, 0.0
    return status, float(np.ceil(-value - 1e-9))


def _objective_vector(problem: BIPProblem) -> np.ndarray:
    c = np.zeros(problem.num_vars)
    for idx, coef in problem.objective.items():
        c[idx] = coef
    return c


def _solve_simplex(problem, lower, upper):
    from repro.solver import simplex

    constraints = [(list(c.terms), c.op, float(c.rhs)) for c in problem.constraints]
    status, value, x = simplex.solve_lp(
        _objective_vector(problem), constraints, problem.num_vars, lower, upper
    )
    if status != "optimal":
        return status, 0.0, None
    return status, value + problem.objective_constant, x


def _solve_highs(problem, lower, upper):
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix

    n = problem.num_vars
    ub_rows, ub_cols, ub_data, ub_rhs = [], [], [], []
    eq_rows, eq_cols, eq_data, eq_rhs = [], [], [], []
    for constraint in problem.constraints:
        if constraint.op == "==":
            row_idx = len(eq_rhs)
            for coef, idx in constraint.terms:
                eq_rows.append(row_idx)
                eq_cols.append(idx)
                eq_data.append(float(coef))
            eq_rhs.append(float(constraint.rhs))
        else:
            sign = 1.0 if constraint.op == "<=" else -1.0
            row_idx = len(ub_rhs)
            for coef, idx in constraint.terms:
                ub_rows.append(row_idx)
                ub_cols.append(idx)
                ub_data.append(sign * float(coef))
            ub_rhs.append(sign * float(constraint.rhs))

    kwargs = {}
    if ub_rhs:
        kwargs["A_ub"] = csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(len(ub_rhs), n))
        kwargs["b_ub"] = np.array(ub_rhs)
    if eq_rhs:
        kwargs["A_eq"] = csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(eq_rhs), n))
        kwargs["b_eq"] = np.array(eq_rhs)

    result = linprog(
        -_objective_vector(problem),  # linprog minimizes
        bounds=np.column_stack([lower, upper]),
        method="highs",
        **kwargs,
    )
    if result.status == 2:
        return "infeasible", 0.0, None
    if not result.success:
        raise SolverError(f"HiGHS LP failed: {result.message}")
    return "optimal", -result.fun + problem.objective_constant, result.x
