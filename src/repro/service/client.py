"""A small stdlib client for the query service (tests + load generator).

    client = ServiceClient("http://127.0.0.1:8080")
    client.healthz()
    response = client.query(query="Q1", scheme="km", k=2, deadline_ms=500)
    assert response.terminal

Connections are **kept alive**: the client holds one
:class:`http.client.HTTPConnection` per (process, thread) and reuses it
across requests (the server speaks HTTP/1.1), so a load generator is not
paying a TCP handshake per request.  A connection the server has since
closed is retried once on a fresh one.

Non-200 answers that still carry a response body (429 rejected,
504 timeout) are returned as :class:`~repro.service.api.QueryResponse`
like any other; only transport-level failures raise
:class:`ServiceClientError`.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import urllib.parse
from typing import Optional

from repro.errors import ServiceError
from repro.service.api import QueryRequest, QueryResponse


class ServiceClientError(ServiceError):
    """The service could not be reached or answered garbage."""


#: Connection states worth one silent retry on a fresh socket: the server
#: dropped a kept-alive connection between our requests (idle timeout,
#: restart), which is indistinguishable from a stale socket until we write.
_RETRYABLE = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    BrokenPipeError,
    ConnectionResetError,
)


class ServiceClient:
    """Talk to one serving process over HTTP/JSON (kept-alive)."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ServiceClientError(f"unsupported scheme {parsed.scheme!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._prefix = parsed.path.rstrip("/")
        # One connection per (pid, thread): http.client connections are not
        # thread-safe, and a forked child must never reuse the parent's socket.
        self._local = threading.local()

    # -- plumbing ----------------------------------------------------------
    def _connection(self, fresh: bool = False) -> http.client.HTTPConnection:
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if fresh or conn is None or getattr(self._local, "pid", None) != pid:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.conn = conn
            self._local.pid = pid
        return conn

    def close(self) -> None:
        """Close this thread's kept-alive connection (others are owned by
        their threads and close with them)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None

    def _request(
        self,
        path: str,
        body: Optional[bytes] = None,
        method: str = "GET",
        headers: Optional[dict] = None,
    ) -> tuple:
        all_headers = dict(headers or {})
        if body:
            all_headers.setdefault("Content-Type", "application/json")
        target = self._prefix + path
        last_exc: Optional[Exception] = None
        for attempt in (0, 1):
            conn = self._connection(fresh=attempt > 0)
            try:
                conn.request(method, target, body=body, headers=all_headers)
                reply = conn.getresponse()
                text = reply.read().decode("utf-8")
                if reply.will_close:
                    self.close()
                return reply.status, text
            except _RETRYABLE as exc:
                # Stale kept-alive socket — retry once on a fresh connection.
                last_exc = exc
                self.close()
            except OSError as exc:
                self.close()
                raise ServiceClientError(f"{method} {path} failed: {exc}") from exc
        raise ServiceClientError(
            f"{method} {path} failed: {last_exc}"
        ) from last_exc

    def _json(self, path: str, body: Optional[bytes] = None, method: str = "GET"):
        status, text = self._request(path, body, method)
        try:
            return status, json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceClientError(
                f"{method} {path} returned non-JSON ({status}): {text[:200]!r}"
            ) from exc

    # -- endpoints ---------------------------------------------------------
    def healthz(self, deep: bool = False) -> dict:
        """The liveness probe; ``deep=True`` runs the dependency +
        error-budget checks instead.

        A deep probe does **not** raise on 503 — an unhealthy verdict is
        an answer, not a transport failure — the payload comes back with
        the HTTP code under ``http_status`` so callers (and the CI smoke
        job) can assert on either.
        """
        if deep:
            status, payload = self._json("/healthz?deep=1")
            if status not in (200, 503):
                raise ServiceClientError(f"healthz?deep=1 returned {status}: {payload}")
            return {**payload, "http_status": status}
        status, payload = self._json("/healthz")
        if status != 200:
            raise ServiceClientError(f"healthz returned {status}: {payload}")
        return payload

    def status(self) -> dict:
        status, payload = self._json("/v1/status")
        if status != 200:
            raise ServiceClientError(f"status returned {status}: {payload}")
        return payload

    def metrics(self, openmetrics: bool = False) -> str:
        """One scrape: Prometheus text 0.0.4, or (``openmetrics=True``)
        the OpenMetrics exposition carrying the trace-id exemplars."""
        headers = (
            {"Accept": "application/openmetrics-text; version=1.0.0"}
            if openmetrics
            else None
        )
        status, text = self._request("/metrics", headers=headers)
        if status != 200:
            raise ServiceClientError(f"metrics returned {status}")
        return text

    def query(self, request: Optional[QueryRequest] = None, **fields) -> QueryResponse:
        """POST one request (either a built one or keyword fields).

        Every :class:`~repro.service.api.QueryRequest` field forwards —
        including ``precision`` (``fast``/``balanced``/``tight``), whose
        per-tier provenance comes back in the response's ``tier``,
        ``exact_components``, ``estimated_components`` and ``gap`` fields,
        and ``explain`` (``True`` attaches the structured
        :mod:`~repro.obs.explain` payload under ``response.explain`` —
        decomposition map, per-component provenance, convergence
        timeline, and a rendered IIS on infeasible databases).
        """
        if request is None:
            request = QueryRequest(**fields)
        http_status, payload = self._json(
            "/v1/query", request.to_json().encode("utf-8"), method="POST"
        )
        if not isinstance(payload, dict) or "status" not in payload:
            raise ServiceClientError(
                f"query returned malformed payload ({http_status}): {payload!r}"
            )
        if "request_id" not in payload:  # a 400 validation reply
            payload = {"request_id": request.request_id, **payload}
        return QueryResponse.from_dict(payload)
