"""Representation-size benchmark: LICM vs U-relations (the Figure 1 story).

Encodes one generalized item covering ``n`` leaves in both representations
and records the sizes: LICM stays at ``n`` rows + 1 constraint while the
U-relation needs ``n * 2^(n-1)`` rows ("this enumeration is unacceptable
when the number of possible tuples in a block is large (e.g., up to 20)").
Run with::

    pytest benchmarks/bench_representation.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines.urelations import encode_generalized_item
from repro.core.correlations import at_least
from repro.core.database import LICMModel

LEAF_COUNTS = (4, 8, 12, 16)


def _encode_licm(num_leaves: int) -> LICMModel:
    model = LICMModel()
    relation = model.relation("TRANSITEM", ["TID", "ItemName"])
    variables = []
    for i in range(num_leaves):
        variables.append(relation.insert_maybe(("T1", f"leaf{i}")).ext)
    model.add_all(at_least(variables, 1))
    return model


@pytest.mark.parametrize("n", LEAF_COUNTS)
def test_licm_encoding(benchmark, n):
    model = benchmark(_encode_licm, n)
    relation = model.relations["TRANSITEM"]
    benchmark.extra_info["rows"] = len(relation)
    benchmark.extra_info["constraints"] = model.num_constraints
    assert len(relation) == n


@pytest.mark.parametrize("n", LEAF_COUNTS)
def test_urelation_encoding(benchmark, n):
    leaves = [f"leaf{i}" for i in range(n)]
    relation = benchmark(encode_generalized_item, "T1", leaves)
    benchmark.extra_info["rows"] = relation.num_rows
    assert relation.num_rows == n * 2 ** (n - 1)
