"""The 'auto' backend probe is resolved once per process, not per solve."""

from __future__ import annotations

import builtins

import pytest

from repro.solver import interface


@pytest.fixture(autouse=True)
def fresh_probe():
    interface._reset_backend_probe()
    yield
    interface._reset_backend_probe()


def test_explicit_backends_bypass_probe(monkeypatch):
    def boom():  # pragma: no cover - must not run
        raise AssertionError("probe should not fire for explicit backends")

    monkeypatch.setattr(interface, "_probe_scipy", boom)
    assert interface._resolve_backend("bb") == "bb"
    assert interface._resolve_backend("scipy") == "scipy"


def test_auto_resolves_scipy_when_import_succeeds(monkeypatch):
    calls = []

    def probed():
        calls.append(1)
        return True

    monkeypatch.setattr(interface, "_probe_scipy", probed)
    assert interface._resolve_backend("auto") == "scipy"
    assert interface._resolve_backend("auto") == "scipy"
    assert len(calls) == 1  # memoized after the first probe


def test_auto_falls_back_when_import_fails(monkeypatch):
    """Monkeypatch the import machinery so ``from scipy.optimize import
    milp`` raises, exercising the real probe's failure branch."""
    real_import = builtins.__import__
    attempts = []

    def failing_import(name, *args, **kwargs):
        if name.startswith("scipy"):
            attempts.append(name)
            raise ImportError(f"forced failure for {name}")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", failing_import)
    monkeypatch.delitem(__import__("sys").modules, "scipy.optimize", raising=False)
    assert interface._resolve_backend("auto") == "bb"
    assert attempts  # the probe really attempted the import
    # memoized: a second resolution does not re-attempt the import
    attempts.clear()
    assert interface._resolve_backend("auto") == "bb"
    assert attempts == []


def test_auto_succeeds_via_real_import():
    """With scipy actually installed the probe picks the scipy backend."""
    assert interface._resolve_backend("auto") == "scipy"
