"""Unit tests for the dataset container and the synthetic generator."""

import pytest

from repro.data.generator import generate
from repro.data.transactions import TransactionDataset
from repro.errors import SchemaError


def test_generator_matches_requested_shape():
    ds = generate(500, num_items=100, average_size=5.0, seed=3)
    assert ds.num_transactions == 500
    assert ds.num_items == 100
    assert 3.0 <= ds.average_size <= 7.0  # geometric mean near 5
    assert all(len(itemset) >= 1 for _, itemset in ds.transactions)


def test_generator_is_deterministic():
    a = generate(100, num_items=50, seed=42)
    b = generate(100, num_items=50, seed=42)
    assert a.transactions == b.transactions
    assert a.locations == b.locations
    assert a.prices == b.prices


def test_generator_seeds_differ():
    a = generate(100, num_items=50, seed=1)
    b = generate(100, num_items=50, seed=2)
    assert a.transactions != b.transactions


def test_attribute_ranges():
    ds = generate(300, num_items=60, seed=5)
    assert all(0 <= loc < 1000 for loc in ds.locations.values())
    assert all(0 <= price < 40 for price in ds.prices.values())
    assert set(ds.locations) == {tid for tid, _ in ds.transactions}
    assert set(ds.prices) == set(ds.items)


def test_zipf_skew():
    """Popular items should dominate: the top decile of items carries a
    disproportionate share of occurrences."""
    ds = generate(2000, num_items=100, seed=9)
    supports = sorted(ds.item_supports().values(), reverse=True)
    top_decile = sum(supports[:10])
    assert top_decile > sum(supports) * 0.3


def test_max_size_clipped():
    ds = generate(500, num_items=50, average_size=20, max_size=10, seed=0)
    assert ds.max_size <= 10


def test_relational_views():
    ds = generate(50, num_items=20, seed=0)
    db = ds.exact_database()
    trans = db.table("TRANS")
    item = db.table("ITEM")
    transitem = db.table("TRANSITEM")
    assert len(trans) == 50
    assert len(item) == 20
    assert len(transitem) == sum(len(s) for _, s in ds.transactions)
    assert trans.schema.attributes == ("TID", "Location")
    assert item.schema.attributes == ("ItemName", "Price")


def test_subset():
    ds = generate(100, num_items=20, seed=0)
    small = ds.subset(10)
    assert small.num_transactions == 10
    assert len(small.locations) == 10
    assert small.items == ds.items


def test_universe_validation():
    with pytest.raises(SchemaError):
        TransactionDataset(
            transactions=[("T1", frozenset({"unknown"}))], items=("a", "b")
        )


def test_item_supports():
    ds = TransactionDataset(
        transactions=[
            ("T1", frozenset({"a", "b"})),
            ("T2", frozenset({"a"})),
        ],
        items=("a", "b", "c"),
    )
    assert ds.item_supports() == {"a": 2, "b": 1}
