"""Tracing overhead: traced vs untraced ``answer_licm`` on a mid-size query.

Three arms over the same (model, plan), each with a fresh cache-less
session per repetition so every rep pays the full prune/normalize/solve
pipeline:

* ``untraced``      — the default no-op tracer (the shipped configuration);
* ``traced``        — an active in-memory :class:`Tracer` (span retention only);
* ``traced_jsonl``  — an active tracer streaming spans to a JSONL file.

Measurement protocol (the first version of this bench famously reported
tracing as a 10% *speedup* — pure scheduling noise):

* one untimed **warmup** rep per arm before any timing;
* arms run interleaved AND the arm *order rotates every rep*, so no arm
  systematically inherits a warm cache/thermal state from another;
* enough reps (15) that the median is meaningful, with the **MAD**
  reported as the spread;
* overhead point estimates below the measured noise floor are clamped to
  0 in the headline number (the raw signed value is kept alongside) —
  per-span costs of ~0.3 µs × 16 spans ≈ 5 µs are unresolvable against a
  ~170 ms query, and a signed noise sample is not a measurement.

The ISSUE-2 acceptance bound — "<5% slowdown with a no-op tracer" — is
checked two ways: the measured per-span cost of the null tracer
extrapolated over the spans a query emits, and the headline overhead of
the traced arm.  Results land in ``BENCH_trace_overhead.json`` at the
repo root.

Run with::

    pytest benchmarks/bench_trace_overhead.py --benchmark-only
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.engine.fabric import ProcessFabric
from repro.engine.session import SolveSession
from repro.obs import JsonlSink, Tracer, activate
from repro.obs.tracer import NULL_TRACER
from repro.queries import answer_licm
from repro.solver.result import SolverOptions

REPS = 15
REPS_REPAT = 9
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_trace_overhead.json")


def _write_results(update: dict) -> None:
    """Read-modify-write the committed results file: the two tests in this
    module own disjoint key sets and must not clobber each other."""
    existing = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(update)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")


def _one_query(encoded, plan):
    """One full cold answer: fresh cache-less session, so nothing amortizes."""
    session = SolveSession(encoded.model, cache_size=0)
    return answer_licm(encoded, plan, session=session)


def _null_span_cost(iterations: int = 200_000) -> float:
    """Measured seconds per no-op span (enter+exit through the null tracer)."""
    tracer = NULL_TRACER
    t0 = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("x"):
            pass
    return (time.perf_counter() - t0) / iterations


def _mad(samples, center):
    return statistics.median(abs(s - center) for s in samples)


def test_trace_overhead(benchmark, context):
    encoded = context.encoding("km", 2).encoded
    plan = context.plan("Q1", encoded)

    jsonl_path = os.path.join(os.path.dirname(RESULTS_PATH), ".bench_trace.jsonl")
    spans_per_query = 0

    def run_untraced():
        t0 = time.perf_counter()
        _one_query(encoded, plan)
        return time.perf_counter() - t0

    def run_traced():
        nonlocal spans_per_query
        tracer = Tracer()
        with activate(tracer):
            t0 = time.perf_counter()
            _one_query(encoded, plan)
            elapsed = time.perf_counter() - t0
        spans_per_query = len(tracer)
        return elapsed

    def run_traced_jsonl():
        with JsonlSink(jsonl_path) as sink:
            with activate(Tracer([sink], retain=False)):
                t0 = time.perf_counter()
                _one_query(encoded, plan)
                return time.perf_counter() - t0

    arms = [
        ("untraced", run_untraced),
        ("traced", run_traced),
        ("traced_jsonl", run_traced_jsonl),
    ]
    samples = {name: [] for name, _ in arms}
    for _, run in arms:  # warmup: one untimed rep per arm
        run()
    for rep in range(REPS):
        # Rotate the arm order each rep so drift (thermal, allocator
        # growth, page cache) is spread evenly across arms instead of
        # biasing whichever arm always runs last.
        order = arms[rep % len(arms):] + arms[: rep % len(arms)]
        for name, run in order:
            samples[name].append(run())
    os.unlink(jsonl_path)

    base = statistics.median(samples["untraced"])
    base_mad = _mad(samples["untraced"], base)
    span_cost = _null_span_cost()
    noop_overhead_pct = 100.0 * (spans_per_query * span_cost) / base
    # The smallest overhead this protocol can resolve: the combined MAD of
    # the two arms being differenced, as a fraction of the base median.
    def overheads(name):
        median = statistics.median(samples[name])
        mad = _mad(samples[name], median)
        raw_pct = 100.0 * (median - base) / base
        noise_floor_pct = 100.0 * (mad + base_mad) / base
        headline = raw_pct if raw_pct > 0 else (0.0 if -raw_pct <= noise_floor_pct else raw_pct)
        return median, mad, raw_pct, noise_floor_pct, headline

    t_median, t_mad, t_raw, t_floor, t_pct = overheads("traced")
    j_median, j_mad, j_raw, j_floor, j_pct = overheads("traced_jsonl")

    results = {
        "query": "Q1",
        "scheme": "km-k2",
        "reps": REPS,
        "protocol": "1 warmup/arm; arms interleaved, order rotated per rep; "
        "median +/- MAD; sub-noise-floor overheads clamped to 0",
        "spans_per_query": spans_per_query,
        "untraced_s": {"median": base, "mad": base_mad, "samples": samples["untraced"]},
        "traced_s": {"median": t_median, "mad": t_mad, "samples": samples["traced"]},
        "traced_jsonl_s": {
            "median": j_median,
            "mad": j_mad,
            "samples": samples["traced_jsonl"],
        },
        "null_span_cost_us": span_cost * 1e6,
        "noop_tracer_overhead_pct": noop_overhead_pct,
        "traced_overhead_pct": t_pct,
        "traced_overhead_raw_pct": t_raw,
        "traced_noise_floor_pct": t_floor,
        "traced_jsonl_overhead_pct": j_pct,
        "traced_jsonl_overhead_raw_pct": j_raw,
        "traced_jsonl_noise_floor_pct": j_floor,
    }
    _write_results(results)

    # Acceptance: the no-op tracer costs < 5% of an untraced query.
    assert noop_overhead_pct < 5.0, results
    # The headline overhead is non-negative by construction *unless* the
    # traced arm is faster by more than the noise floor — which would mean
    # the measurement (not the tracer) is broken.
    assert t_pct >= 0.0, results
    # Sanity: active tracing is instrumentation, not a rewrite of the query.
    assert t_median < base * 2.0, results

    benchmark.extra_info.update(
        {
            "spans_per_query": spans_per_query,
            "noop_overhead_pct": round(noop_overhead_pct, 4),
            "traced_overhead_pct": round(t_pct, 2),
            "traced_overhead_raw_pct": round(t_raw, 2),
            "traced_jsonl_overhead_pct": round(j_pct, 2),
        }
    )
    benchmark(lambda: None)  # timings recorded above; satisfy the fixture


def test_repatriation_overhead(benchmark, context):
    """Telemetry repatriation: shipping each worker's registry delta and
    span records home on the ``UnitResult`` must cost < 5% of a
    process-fabric query (the ISSUE-7 acceptance bound).

    Same protocol as above — two arms over the same (model, plan), one
    long-lived single-worker process fabric per arm (fork cost is paid
    once, outside the timings), a fresh cache-less session per rep so
    every rep solves cold, arms interleaved with the order rotated.
    """
    encoded = context.encoding("km", 2).encoded
    plan = context.plan("Q1", encoded)

    def run(fabric):
        session = SolveSession(
            encoded.model,
            cache_size=0,
            options=SolverOptions(backend="bb"),
            fabric=fabric,
        )
        t0 = time.perf_counter()
        answer_licm(encoded, plan, session=session)
        return time.perf_counter() - t0

    with ProcessFabric(workers=1, repatriate=True) as fab_on:
        with ProcessFabric(workers=1, repatriate=False) as fab_off:
            arms = [
                ("repatriate_on", lambda: run(fab_on)),
                ("repatriate_off", lambda: run(fab_off)),
            ]
            samples = {name: [] for name, _ in arms}
            for _, arm in arms:  # warmup: one untimed rep per arm
                arm()
            for rep in range(REPS_REPAT):
                order = arms[rep % len(arms):] + arms[: rep % len(arms)]
                for name, arm in order:
                    samples[name].append(arm())

    base = statistics.median(samples["repatriate_off"])
    base_mad = _mad(samples["repatriate_off"], base)
    on_median = statistics.median(samples["repatriate_on"])
    on_mad = _mad(samples["repatriate_on"], on_median)
    raw_pct = 100.0 * (on_median - base) / base
    noise_floor_pct = 100.0 * (on_mad + base_mad) / base
    headline = raw_pct if raw_pct > 0 else (0.0 if -raw_pct <= noise_floor_pct else raw_pct)

    _write_results(
        {
            "repatriation": {
                "reps": REPS_REPAT,
                "fabric": "process-1worker",
                "backend": "bb",
                "repatriate_off_s": {
                    "median": base,
                    "mad": base_mad,
                    "samples": samples["repatriate_off"],
                },
                "repatriate_on_s": {
                    "median": on_median,
                    "mad": on_mad,
                    "samples": samples["repatriate_on"],
                },
                "overhead_pct": headline,
                "overhead_raw_pct": raw_pct,
                "noise_floor_pct": noise_floor_pct,
            }
        }
    )

    # Acceptance: repatriation costs < 5% of a process-fabric query.
    assert headline < 5.0, samples
    # A large *speedup* would mean the measurement is broken, not the code.
    assert headline >= 0.0, samples

    benchmark.extra_info.update(
        {
            "repatriation_overhead_pct": round(headline, 2),
            "repatriation_overhead_raw_pct": round(raw_pct, 2),
            "repatriation_noise_floor_pct": round(noise_floor_pct, 2),
        }
    )
    benchmark(lambda: None)  # timings recorded above; satisfy the fixture
