"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation was used with an incompatible or malformed schema."""


class ModelError(ReproError):
    """An LICM model was constructed or combined inconsistently.

    Raised, for example, when mixing relations that belong to different
    :class:`~repro.core.database.LICMModel` instances, or when a
    constraint references a variable from a foreign pool.
    """


class ConstraintError(ReproError):
    """A linear constraint is malformed (bad operator, non-integer bound)."""


class InfeasibleError(ReproError):
    """The constraint system admits no valid assignment (no possible world)."""


class UnboundedError(ReproError):
    """An optimization problem is unbounded.

    Cannot occur for pure-binary programs produced by LICM, but the solver
    stack is usable standalone and reports it faithfully.
    """


class SolverError(ReproError):
    """The solver failed for a reason other than infeasibility."""


class SolverLimitReached(SolverError):
    """A node/time limit stopped the solver before optimality was proven.

    The attached :class:`~repro.solver.interface.Solution` (if any) carries
    the best incumbent and the proven bound, mirroring how the paper reports
    "quite tight approximate bounds" for the hardest bipartite query.
    """

    def __init__(self, message: str, solution=None):
        super().__init__(message)
        self.solution = solution


class EngineError(ReproError):
    """A solve-engine session was misused (e.g. solving after ``close()``)."""


class QueryError(ReproError):
    """A query plan is malformed or applied to an incompatible relation."""


class ServiceError(ReproError):
    """The query service could not accept or execute a request."""


class ValidationError(ServiceError):
    """A service request failed input validation; ``problems`` lists why."""

    def __init__(self, problems):
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class AnonymizationError(ReproError):
    """An anonymization routine received parameters it cannot satisfy."""


class SamplingError(ReproError):
    """Monte Carlo sampling could not produce a valid possible world."""
