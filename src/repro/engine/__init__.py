"""The shared solve-engine layer.

One :class:`SolveSession` per LICM model owns the
``prune -> canonicalize -> solve(min)+solve(max) -> witness`` pipeline
with fingerprint-keyed solve caching, optional parallel min/max, and
structured telemetry.  ``core.bounds`` and ``queries.answer`` are thin
facades over this package.
"""

from repro.engine.cache import CachedSolve, SolveCache
from repro.engine.canonical import CanonicalBIP, canonicalize
from repro.engine.fabric import (
    ExecutorFabric,
    InlineFabric,
    ProcessFabric,
    SolveUnit,
    ThreadFabric,
    UnitResult,
    make_fabric,
)
from repro.engine.l2cache import L2SolveCache
from repro.engine.session import PreparedComponent, PreparedProblem, SolveSession
from repro.engine.telemetry import (
    CacheProbe,
    CounterBumped,
    ListSink,
    LoggingSink,
    PhaseTimed,
    ProblemPrepared,
    SolveFinished,
    Stopwatch,
    Telemetry,
)

__all__ = [
    "CachedSolve",
    "CacheProbe",
    "CanonicalBIP",
    "canonicalize",
    "CounterBumped",
    "ExecutorFabric",
    "InlineFabric",
    "L2SolveCache",
    "ListSink",
    "LoggingSink",
    "PhaseTimed",
    "PreparedComponent",
    "PreparedProblem",
    "ProblemPrepared",
    "ProcessFabric",
    "SolveCache",
    "SolveFinished",
    "SolveSession",
    "SolveUnit",
    "Stopwatch",
    "Telemetry",
    "ThreadFabric",
    "UnitResult",
    "make_fabric",
]
