"""Theorem 1: LICM is complete for finite sets of possible worlds.

Two constructions are provided:

* :func:`build_naive_cnf` — the proof's verbatim construction: write the
  world set in DNF over existence literals, distribute to CNF, and encode
  each clause as one ``>= 1`` linear constraint.  Exponential (it is a
  proof device), so only usable on tiny inputs, and exercised that way in
  tests.

* :func:`build_with_selectors` — a polynomial-size construction using one
  *world-selector* variable per world: exactly one selector is on, and each
  tuple's existence variable is forced equal to the sum of the selectors of
  the worlds containing it.  This realizes the same semantics compactly and
  is what a practical loader would use.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence, Tuple

from repro.core.correlations import exactly
from repro.core.database import LICMModel
from repro.core.linexpr import linear_sum
from repro.errors import ModelError

WorldSet = Sequence[Sequence[Tuple]]


def _collect_tuples(worlds: WorldSet) -> list[Tuple]:
    """All distinct tuples across the world set, in first-seen order."""
    seen: dict[Tuple, None] = {}
    for world in worlds:
        for row in world:
            seen.setdefault(tuple(row), None)
    return list(seen)


def _check_worlds(worlds: WorldSet) -> list[frozenset]:
    normalized = [frozenset(tuple(row) for row in world) for world in worlds]
    if not normalized:
        raise ModelError("Theorem 1 requires a non-empty set of worlds")
    return normalized


def build_naive_cnf(
    worlds: WorldSet, attributes: Sequence[str], name: str = "R"
) -> LICMModel:
    """Theorem 1's DNF-to-CNF construction, verbatim.

    DNF: one conjunct per world ``D_j``, conjoining ``b_i`` for tuples in
    ``D_j`` and ``not b_i`` for tuples absent from it.  Distributing to CNF
    yields one clause per element of the cross product of the conjuncts;
    each clause ``l_1 or ... or l_n`` becomes the linear constraint
    ``sum(b_i for positive l_i) + sum(1 - b_i for negated l_i) >= 1``.
    Clause count is ``|T|^|D|`` — use only on tiny world sets.
    """
    world_sets = _check_worlds(worlds)
    tuples = _collect_tuples(worlds)
    model = LICMModel()
    relation = model.relation(name, attributes)
    variables = [model.new_var() for _ in tuples]
    for row, var in zip(tuples, variables):
        relation.insert(row, ext=var)

    index_of = {row: i for i, row in enumerate(tuples)}
    # Literals per world-conjunct: (var_index, positive?)
    conjuncts = []
    for world in world_sets:
        literals = []
        for row, i in index_of.items():
            literals.append((i, row in world))
        conjuncts.append(literals)

    seen_clauses = set()
    for picks in product(*conjuncts):
        clause = frozenset(picks)
        # A clause containing both b and not-b is a tautology; skip it.
        positives = {i for i, pos in clause if pos}
        negatives = {i for i, pos in clause if not pos}
        if positives & negatives:
            continue
        if clause in seen_clauses:
            continue
        seen_clauses.add(clause)
        expr = linear_sum(
            [variables[i] for i in positives] + [1 - variables[i] for i in negatives]
        )
        model.add(expr >= 1)
    return model


def build_with_selectors(
    worlds: WorldSet, attributes: Sequence[str], name: str = "R"
) -> LICMModel:
    """Polynomial-size complete construction via world-selector variables.

    Adds ``w_1..w_n`` with ``sum w_j = 1`` and, per tuple ``t_i``,
    ``b_i = sum(w_j for worlds j containing t_i)``.  Every valid assignment
    selects exactly one world and forces each tuple's existence to match it.
    """
    world_sets = _check_worlds(worlds)
    tuples = _collect_tuples(worlds)
    model = LICMModel()
    relation = model.relation(name, attributes)
    tuple_vars = [model.new_var() for _ in tuples]
    for row, var in zip(tuples, tuple_vars):
        relation.insert(row, ext=var)

    selectors = model.new_vars(len(world_sets), prefix="w")
    model.add_all(exactly(selectors, 1))
    for row, var in zip(tuples, tuple_vars):
        members = [selectors[j] for j, world in enumerate(world_sets) if row in world]
        model.add((var - linear_sum(members)).eq(0))
    return model
