"""The paper's Query 1/2/3 builders: exactness against the ground truth and
consistency across both evaluation paths."""

import pytest

from repro.anonymize import Hierarchy, encode_generalized, k_anonymize, safe_grouping
from repro.anonymize.base import GeneralizedDataset
from repro.anonymize.encode import encode_bipartite
from repro.data.generator import generate
from repro.errors import QueryError
from repro.queries import (
    QueryParams,
    answer_licm,
    location_predicate,
    price_predicate,
    query1,
    query2,
    query3,
)
from repro.relational.query import evaluate


@pytest.fixture(scope="module")
def dataset():
    return generate(150, num_items=40, seed=31)


@pytest.fixture(scope="module")
def exact_encoding(dataset):
    """An 'anonymization' that generalizes nothing: one certain world."""
    hierarchy = Hierarchy.balanced(dataset.items, fanout=4)
    generalized = GeneralizedDataset(
        source=dataset,
        hierarchy=hierarchy,
        transactions=[(tid, frozenset(items)) for tid, items in dataset.transactions],
        method="identity",
    )
    return encode_generalized(generalized)


PARAMS = QueryParams(pa_selectivity=0.4, pb_selectivity=0.4, pc_selectivity=0.3, q3_selectivity=0.3)


def test_predicates_target_selectivity():
    pa = location_predicate(0.25, 1000)
    assert pa.hi - pa.lo + 1 == 250
    pb = price_predicate(0.25, 40, offset=10)
    assert (pb.lo, pb.hi) == (10, 19)
    with pytest.raises(QueryError):
        location_predicate(0.0)
    with pytest.raises(QueryError):
        price_predicate(0.9, 40, offset=30)


def test_query1_exact_world_bounds_collapse(exact_encoding, dataset):
    """On certain data, LICM bounds collapse to the true answer."""
    plan = query1(exact_encoding, PARAMS)
    truth = evaluate(plan, dataset.exact_database())
    answer = answer_licm(exact_encoding, plan)
    assert answer.lower == answer.upper == truth


def test_query2_exact_world_bounds_collapse(exact_encoding, dataset):
    params = QueryParams(
        pa_selectivity=0.5, pb_selectivity=0.5, pc_selectivity=0.4,
        x_items=2, y_items=1,
    )
    plan = query2(exact_encoding, params)
    truth = evaluate(plan, dataset.exact_database())
    answer = answer_licm(exact_encoding, plan)
    assert answer.lower == answer.upper == truth


def test_query3_exact_world_bounds_collapse(exact_encoding, dataset):
    plan = query3(exact_encoding, PARAMS)
    truth = evaluate(plan, dataset.exact_database())
    answer = answer_licm(exact_encoding, plan)
    assert answer.lower == answer.upper == truth


def test_query3_support_scaling():
    params = QueryParams()
    assert params.scaled_support(515_000) == 80
    assert params.scaled_support(51_500) == 8
    assert params.scaled_support(100) == 2  # floor


def test_queries_bound_truth_under_anonymization(dataset):
    """The true (pre-anonymization) answer always lies within LICM bounds."""
    hierarchy = Hierarchy.balanced(dataset.items, fanout=4)
    encoded = encode_generalized(k_anonymize(dataset, hierarchy, 3))
    truth_db = dataset.exact_database()
    for builder in (query1, query2, query3):
        plan = builder(encoded, PARAMS)
        truth = evaluate(plan, truth_db)
        answer = answer_licm(encoded, plan)
        assert answer.lower <= truth <= answer.upper, builder.__name__


def test_queries_bound_truth_bipartite(dataset):
    from types import SimpleNamespace

    encoded = encode_bipartite(safe_grouping(dataset, 3))
    truth_db = dataset.exact_database()
    # The bipartite plan scans TRANSGROUP/G/ITEMGROUP; the ground truth
    # database exposes TRANSITEM, so evaluate the generalized-shaped twin.
    exact_shape = SimpleNamespace(
        kind="generalized", relations={"TRANS": dataset.trans_relation()}
    )
    for builder in (query1, query3):
        plan = builder(encoded, PARAMS)
        truth = evaluate(builder(exact_shape, PARAMS), truth_db)
        answer = answer_licm(encoded, plan)
        assert answer.lower <= truth <= answer.upper, builder.__name__


def test_answer_licm_rejects_relational_plan(exact_encoding):
    from repro.relational.query import Scan

    with pytest.raises(QueryError):
        answer_licm(exact_encoding, Scan("TRANS"))


def test_answer_timing_fields(exact_encoding):
    plan = query1(exact_encoding, PARAMS)
    answer = answer_licm(exact_encoding, plan)
    assert answer.query_time >= 0
    assert answer.solve_time >= 0
