"""Bounded LRU cache of BIP solve outcomes.

Entries are keyed by ``(canonical fingerprint, sense)`` and store the
solution *in canonical variable order*, so a hit coming from a
structurally identical but differently-indexed repeat query can be
translated back through that query's own :class:`~repro.engine.canonical.CanonicalBIP`.

The cache is self-validating: the fingerprint is computed from the
*pruned* problem on every lookup, so any store mutation that actually
changes a problem changes its fingerprint and misses naturally.  The
session layer additionally clears the cache outright when non-lineage
constraints are added (see ``SolveSession._ensure_fresh``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True)
class CachedSolve:
    """One optimization outcome, stored in canonical variable order."""

    status: str
    objective: Optional[int]
    x_canonical: Optional[Tuple[int, ...]]
    bound: Optional[float]
    nodes: int
    backend: str


class SolveCache:
    """A thread-safe LRU map ``(fingerprint, sense) -> CachedSolve``.

    ``maxsize <= 0`` disables caching entirely (every lookup misses and
    nothing is stored) — the facade path for one-shot solves.
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, CachedSolve]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> Optional[CachedSolve]:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, entry: CachedSolve) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Explicit invalidation (constraint-store generation changed)."""
        with self._lock:
            if self._data:
                self.invalidations += 1
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> dict:
        """A consistent snapshot of the counters (taken under the lock)."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
