"""Binary integer program normal form.

The solver stack works on a :class:`BIPProblem`: dense variable indices
``0..n-1``, a list of integer linear constraints, and an integer linear
objective.  :func:`from_licm` converts a pruned LICM result (objective
expression + constraint store) into this form, remapping sparse model
variable indices to dense problem indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Tuple

from repro.core.constraints import LinearConstraint
from repro.core.linexpr import LinearExpr
from repro.errors import SolverError

Term = Tuple[int, int]  # (coefficient, dense variable index)


@dataclass
class BIPConstraint:
    """One constraint in dense-index form."""

    terms: Tuple[Term, ...]
    op: str  # '<=', '>=', '=='
    rhs: int

    def satisfied_by(self, x: Sequence[int]) -> bool:
        lhs = sum(coef * x[idx] for coef, idx in self.terms)
        if self.op == "<=":
            return lhs <= self.rhs
        if self.op == ">=":
            return lhs >= self.rhs
        return lhs == self.rhs


@dataclass
class BIPProblem:
    """``optimize c.x + c0  subject to  A x θ b,  x ∈ {0,1}^n``."""

    num_vars: int
    constraints: list[BIPConstraint]
    objective: dict[int, int]
    objective_constant: int = 0
    names: list[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.names:
            self.names = [f"x{i}" for i in range(self.num_vars)]
        for idx in self.objective:
            if not 0 <= idx < self.num_vars:
                raise SolverError(f"objective references unknown variable {idx}")
        for constraint in self.constraints:
            for _, idx in constraint.terms:
                if not 0 <= idx < self.num_vars:
                    raise SolverError(f"constraint references unknown variable {idx}")

    # -- evaluation --------------------------------------------------------
    def objective_value(self, x: Sequence[int]) -> int:
        return self.objective_constant + sum(c * x[i] for i, c in self.objective.items())

    def is_feasible(self, x: Sequence[int]) -> bool:
        if len(x) != self.num_vars or any(v not in (0, 1) for v in x):
            return False
        return all(constraint.satisfied_by(x) for constraint in self.constraints)

    # -- size --------------------------------------------------------------
    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_nonzeros(self) -> int:
        return sum(len(c.terms) for c in self.constraints)

    def __repr__(self) -> str:
        return (
            f"BIPProblem({self.num_vars} vars, {self.num_constraints} constraints, "
            f"{self.num_nonzeros} nonzeros)"
        )


def from_licm(
    objective: LinearExpr,
    constraints: Iterable[LinearConstraint],
    variable_names: Mapping[int, str] | None = None,
) -> tuple[BIPProblem, dict[int, int]]:
    """Convert an LICM objective + constraints into a dense BIP.

    Returns the problem and the mapping ``model_var_index -> dense_index``
    used to translate solver solutions back into possible-world assignments.
    """
    constraints = list(constraints)
    model_vars: list[int] = sorted(
        set(objective.coeffs)
        | {idx for c in constraints for idx in c.variables}
    )
    dense = {model_idx: i for i, model_idx in enumerate(model_vars)}
    bip_constraints = [
        BIPConstraint(
            tuple((coef, dense[idx]) for coef, idx in c.terms), c.op, c.rhs
        )
        for c in constraints
    ]
    names = [
        variable_names[idx] if variable_names and idx in variable_names else f"b[{idx}]"
        for idx in model_vars
    ]
    problem = BIPProblem(
        num_vars=len(model_vars),
        constraints=bip_constraints,
        objective={dense[idx]: coef for idx, coef in objective.coeffs.items()},
        objective_constant=objective.constant,
        names=names,
    )
    return problem, dense
