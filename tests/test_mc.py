"""Monte Carlo baseline: sampler validity and range containment."""

import random

import pytest

from repro.anonymize import (
    Hierarchy,
    encode_bipartite,
    encode_generalized,
    encode_suppressed,
    k_anonymize,
    safe_grouping,
)
from repro.anonymize.base import SuppressedDataset
from repro.core.worlds import is_valid
from repro.data.generator import generate
from repro.errors import SamplingError
from repro.mc.evaluate import run_monte_carlo
from repro.mc.sampler import sample_assignment, sample_generic, sample_world
from repro.queries import answer_licm, query1, QueryParams


@pytest.fixture(scope="module")
def dataset():
    return generate(120, num_items=32, seed=21)


@pytest.fixture(scope="module")
def encodings(dataset):
    hierarchy = Hierarchy.balanced(dataset.items, fanout=4)
    generalized = encode_generalized(k_anonymize(dataset, hierarchy, 3))
    bipartite = encode_bipartite(safe_grouping(dataset, 3))
    published = SuppressedDataset(
        source=dataset,
        transactions=[
            (tid, itemset - {dataset.items[0]}) for tid, itemset in dataset.transactions
        ],
        suppressed_items=frozenset({dataset.items[0]}),
    )
    suppressed = encode_suppressed(published)
    return {"generalized": generalized, "bipartite": bipartite, "suppressed": suppressed}


@pytest.mark.parametrize("kind", ["generalized", "bipartite", "suppressed"])
def test_samples_are_valid_worlds(encodings, kind):
    encoded = encodings[kind]
    rng = random.Random(5)
    for _ in range(5):
        assignment = sample_assignment(encoded, rng)
        assert is_valid(encoded.model.constraints, assignment)


@pytest.mark.parametrize("kind", ["generalized", "bipartite", "suppressed"])
def test_sample_world_builds_database(encodings, kind):
    encoded = encodings[kind]
    db = sample_world(encoded, random.Random(1), check=True)
    assert "TRANS" in db and "ITEM" in db


def test_samples_vary(encodings):
    encoded = encodings["generalized"]
    rng = random.Random(3)
    worlds = {frozenset(sample_world(encoded, rng).table("TRANSITEM").rows) for _ in range(5)}
    assert len(worlds) > 1


def test_mc_range_inside_licm_range(encodings):
    """The paper's Figure 5 invariant: [M_min, M_max] ⊆ [L_min, L_max]."""
    params = QueryParams(pa_selectivity=0.3, pb_selectivity=0.5)
    for encoded in encodings.values():
        plan = query1(encoded, params)
        licm = answer_licm(encoded, plan)
        mc = run_monte_carlo(encoded, plan, samples=8, seed=2)
        assert licm.lower <= mc.minimum <= mc.maximum <= licm.upper


def test_mc_result_statistics(encodings):
    plan = query1(encodings["bipartite"], QueryParams(pa_selectivity=0.5))
    result = run_monte_carlo(encodings["bipartite"], plan, samples=6, seed=0)
    assert len(result.values) == 6
    assert result.minimum <= result.mean <= result.maximum
    assert result.total_time >= 0


def test_mc_requires_aggregate_plan(encodings):
    from repro.relational.query import Scan

    with pytest.raises(SamplingError):
        run_monte_carlo(encodings["bipartite"], Scan("TRANS"), samples=1)


def test_mc_requires_positive_samples(encodings):
    from repro.relational.query import CountStar, Scan

    with pytest.raises(SamplingError):
        run_monte_carlo(encodings["bipartite"], CountStar(Scan("TRANS")), samples=0)


def test_mc_deterministic_under_seed(encodings):
    plan = query1(encodings["generalized"], QueryParams(pa_selectivity=0.5))
    a = run_monte_carlo(encodings["generalized"], plan, samples=4, seed=9)
    b = run_monte_carlo(encodings["generalized"], plan, samples=4, seed=9)
    assert a.values == b.values


def test_generic_sampler_on_arbitrary_model():
    from repro.core import LICMModel, correlations

    model = LICMModel()
    variables = model.new_vars(8)
    model.add_all(correlations.exactly(variables[:4], 2))
    model.add_all(correlations.implies(variables[4], variables[5]))
    assignment = sample_generic(model, random.Random(0))
    assert assignment is not None
    assert is_valid(model.constraints, assignment)


def test_generic_sampler_infeasible_returns_none():
    from repro.core import LICMModel

    model = LICMModel()
    var = model.new_var()
    model.add(var >= 1)
    model.add(var <= 0)
    assert sample_generic(model, random.Random(0), max_restarts=3) is None
