"""A small stdlib client for the query service (tests + load generator).

    client = ServiceClient("http://127.0.0.1:8080")
    client.healthz()
    response = client.query(query="Q1", scheme="km", k=2, deadline_ms=500)
    assert response.terminal

Non-200 answers that still carry a response body (429 rejected,
504 timeout) are returned as :class:`~repro.service.api.QueryResponse`
like any other; only transport-level failures raise
:class:`ServiceClientError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import ServiceError
from repro.service.api import QueryRequest, QueryResponse


class ServiceClientError(ServiceError):
    """The service could not be reached or answered garbage."""


class ServiceClient:
    """Talk to one serving process over HTTP/JSON."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------
    def _request(
        self,
        path: str,
        body: Optional[bytes] = None,
        method: str = "GET",
        headers: Optional[dict] = None,
    ) -> tuple:
        all_headers = dict(headers or {})
        if body:
            all_headers.setdefault("Content-Type", "application/json")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers=all_headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.status, reply.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a JSON body is still a service answer.
            return exc.code, exc.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceClientError(f"{method} {path} failed: {exc}") from exc

    def _json(self, path: str, body: Optional[bytes] = None, method: str = "GET"):
        status, text = self._request(path, body, method)
        try:
            return status, json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceClientError(
                f"{method} {path} returned non-JSON ({status}): {text[:200]!r}"
            ) from exc

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> dict:
        status, payload = self._json("/healthz")
        if status != 200:
            raise ServiceClientError(f"healthz returned {status}: {payload}")
        return payload

    def status(self) -> dict:
        status, payload = self._json("/v1/status")
        if status != 200:
            raise ServiceClientError(f"status returned {status}: {payload}")
        return payload

    def metrics(self, openmetrics: bool = False) -> str:
        """One scrape: Prometheus text 0.0.4, or (``openmetrics=True``)
        the OpenMetrics exposition carrying the trace-id exemplars."""
        headers = (
            {"Accept": "application/openmetrics-text; version=1.0.0"}
            if openmetrics
            else None
        )
        status, text = self._request("/metrics", headers=headers)
        if status != 200:
            raise ServiceClientError(f"metrics returned {status}")
        return text

    def query(self, request: Optional[QueryRequest] = None, **fields) -> QueryResponse:
        """POST one request (either a built one or keyword fields)."""
        if request is None:
            request = QueryRequest(**fields)
        http_status, payload = self._json(
            "/v1/query", request.to_json().encode("utf-8"), method="POST"
        )
        if not isinstance(payload, dict) or "status" not in payload:
            raise ServiceClientError(
                f"query returned malformed payload ({http_status}): {payload!r}"
            )
        if "request_id" not in payload:  # a 400 validation reply
            payload = {"request_id": request.request_id, **payload}
        return QueryResponse.from_dict(payload)
