"""SciPy (HiGHS) MILP backend.

The paper uses IBM CPLEX as its off-the-shelf solver; SciPy's bundled HiGHS
is this reproduction's off-the-shelf equivalent.  The from-scratch
branch-and-bound (``backend='bb'``) cross-checks it in tests and serves as
the ablation point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.telemetry import Stopwatch
from repro.errors import SolverError
from repro.solver.model import BIPProblem
from repro.solver.result import Solution, SolverOptions


def solve_bip_scipy(
    problem: BIPProblem, sense: str = "max", options: Optional[SolverOptions] = None
) -> Solution:
    """Optimize a binary program with ``scipy.optimize.milp``."""
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import csr_matrix

    options = options or SolverOptions()
    clock = Stopwatch()
    n = problem.num_vars
    sign = -1.0 if sense == "max" else 1.0  # milp minimizes

    c = np.zeros(n)
    for idx, coef in problem.objective.items():
        c[idx] = sign * coef

    if n == 0:
        return Solution(
            status="optimal",
            objective=problem.objective_constant,
            x=[],
            bound=float(problem.objective_constant),
            solve_time=clock.elapsed,
            backend="scipy",
        )

    rows, cols, data, lower, upper = [], [], [], [], []
    for constraint in problem.constraints:
        row_idx = len(lower)
        for coef, idx in constraint.terms:
            rows.append(row_idx)
            cols.append(idx)
            data.append(float(coef))
        if constraint.op == "<=":
            lower.append(-np.inf)
            upper.append(float(constraint.rhs))
        elif constraint.op == ">=":
            lower.append(float(constraint.rhs))
            upper.append(np.inf)
        else:
            lower.append(float(constraint.rhs))
            upper.append(float(constraint.rhs))

    kwargs = {}
    if lower:
        matrix = csr_matrix((data, (rows, cols)), shape=(len(lower), n))
        kwargs["constraints"] = LinearConstraint(matrix, lower, upper)

    result = milp(
        c,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        options={"time_limit": options.time_limit},
        **kwargs,
    )
    if result.status == 4:
        # HiGHS presolve occasionally reports "Solve error" on tiny
        # infeasible equality systems; retrying without presolve yields a
        # definitive verdict.
        result = milp(
            c,
            integrality=np.ones(n),
            bounds=Bounds(0, 1),
            options={"time_limit": options.time_limit, "presolve": False},
            **kwargs,
        )
    elapsed = clock.stop()

    if result.status == 2:  # infeasible
        return Solution(status="infeasible", solve_time=elapsed, backend="scipy")
    if result.status == 1:  # iteration/time limit
        objective = None
        x = None
        if result.x is not None:
            x = [int(round(v)) for v in result.x]
            objective = problem.objective_value(x)
        bound = None
        if result.mip_dual_bound is not None:
            bound = sign * result.mip_dual_bound + problem.objective_constant
        return Solution(
            status="limit",
            objective=objective,
            x=x,
            bound=bound,
            solve_time=elapsed,
            backend="scipy",
        )
    if not result.success:
        raise SolverError(f"scipy.milp failed: {result.message}")

    x = [int(round(v)) for v in result.x]
    objective = problem.objective_value(x)
    return Solution(
        status="optimal",
        objective=objective,
        x=x,
        bound=float(objective),
        nodes=int(getattr(result, "mip_node_count", 0) or 0),
        solve_time=elapsed,
        backend="scipy",
    )
