"""The paper's three evaluation queries (Section V-B) as plan builders.

Each builder returns one logical plan that runs unchanged on both engines:
the deterministic engine per sampled world (Monte Carlo path) and the LICM
evaluator (bounds path).  Plans are built with selections already pushed
against the public TRANS relation, so the bipartite encoding's group join
only expands the qualifying transactions — the "keep the encoding implicit
for as long as possible" advice of the Appendix.

* **Query 1** — count Pa-transactions containing at least one Pb-item
  (Pa on Location, selectivity 0.5%; Pb on Price, 25%).
* **Query 2** — count Pa-transactions containing >= X Pb-items AND >= Y
  Pc-items (X=4, Y=2; selectivities 0.5% / 25% / 25%).
* **Query 3** — count Pa-transactions containing at least one item that
  appears in >= X Pb-transactions (X=80 at the paper's 515K scale;
  both location selectivities 0.3%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.encode import EncodedDatabase
from repro.queries.predicates import location_predicate, price_predicate
from repro.relational.predicates import Predicate
from repro.relational.query import (
    CountStar,
    HavingCount,
    Intersect,
    NaturalJoin,
    PlanNode,
    Project,
    Scan,
    Select,
)


def restricted_transitem(encoded: EncodedDatabase, trans_predicate: Predicate) -> PlanNode:
    """(TID, ItemName) pairs of the transactions matching the predicate.

    For the bipartite encoding the restriction is joined in *before* the
    group expansion, so only qualifying groups' permutation variables enter
    the query's lineage.
    """
    selected = Select(Scan("TRANS"), trans_predicate)
    if encoded.kind == "bipartite":
        expanded = NaturalJoin(
            NaturalJoin(NaturalJoin(selected, Scan("TRANSGROUP")), Scan("G")),
            Scan("ITEMGROUP"),
        )
    else:
        expanded = NaturalJoin(selected, Scan("TRANSITEM"))
    return Project(expanded, ["TID", "ItemName"])


@dataclass
class QueryParams:
    """Workload parameters, defaulting to the paper's settings."""

    pa_selectivity: float = 0.005
    pb_selectivity: float = 0.25
    pc_selectivity: float = 0.25
    q3_selectivity: float = 0.003
    x_items: int = 4  # Query 2's X
    y_items: int = 2  # Query 2's Y
    x_support: int = 80  # Query 3's X (paper scale)
    location_range: int = 1000
    price_range: int = 40

    def scaled_support(self, num_transactions: int, paper_scale: int = 515_000) -> int:
        """Scale Query 3's support threshold to a smaller dataset.

        At the paper's scale, X=80 is about 5% of the ~1545 Pb-transactions;
        keeping the ratio keeps the query shape meaningful.
        """
        scaled = round(self.x_support * num_transactions / paper_scale)
        return max(2, scaled)


def query1(encoded: EncodedDatabase, params: QueryParams | None = None) -> PlanNode:
    """Count Pa-transactions containing at least one Pb-item."""
    params = params or QueryParams()
    pa = location_predicate(params.pa_selectivity, params.location_range)
    pb = price_predicate(params.pb_selectivity, params.price_range)
    pairs = restricted_transitem(encoded, pa)
    priced = NaturalJoin(pairs, Select(Scan("ITEM"), pb))
    return CountStar(Project(priced, ["TID"]))


def query2(encoded: EncodedDatabase, params: QueryParams | None = None) -> PlanNode:
    """Count Pa-transactions with >= X Pb-items AND >= Y Pc-items.

    Pb and Pc are disjoint price ranges (offset apart), as two overlapping
    25% ranges would degenerate to one predicate.
    """
    params = params or QueryParams()
    pa = location_predicate(params.pa_selectivity, params.location_range)
    pb = price_predicate(params.pb_selectivity, params.price_range)
    pc_offset = max(1, round(params.pb_selectivity * params.price_range))
    pc = price_predicate(params.pc_selectivity, params.price_range, offset=pc_offset)
    pairs = restricted_transitem(encoded, pa)
    with_x = HavingCount(
        NaturalJoin(pairs, Select(Scan("ITEM"), pb)), ["TID"], ">=", params.x_items
    )
    with_y = HavingCount(
        NaturalJoin(pairs, Select(Scan("ITEM"), pc)), ["TID"], ">=", params.y_items
    )
    return CountStar(Intersect(with_x, with_y))


def query3(
    encoded: EncodedDatabase,
    params: QueryParams | None = None,
    num_transactions: int | None = None,
) -> PlanNode:
    """Count Pa-transactions containing an item found in >= X Pb-transactions.

    ``num_transactions`` (default: the encoded TRANS size) scales the
    support threshold from the paper's 515K-transaction setting.
    """
    params = params or QueryParams()
    if num_transactions is None:
        num_transactions = len(encoded.relations["TRANS"])
    support = params.scaled_support(num_transactions)
    pa = location_predicate(params.q3_selectivity, params.location_range)
    pb_offset = max(1, round(params.q3_selectivity * params.location_range))
    pb = location_predicate(
        params.q3_selectivity, params.location_range, offset=pb_offset
    )
    popular = HavingCount(
        restricted_transitem(encoded, pb), ["ItemName"], ">=", support
    )
    qualifying = NaturalJoin(restricted_transitem(encoded, pa), popular)
    return CountStar(Project(qualifying, ["TID"]))


QUERY_BUILDERS = {"Q1": query1, "Q2": query2, "Q3": query3}
