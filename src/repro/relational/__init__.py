"""Deterministic in-memory relational engine (the classical-DBMS substitute)."""

from repro.relational.predicates import (
    And,
    Between,
    Compare,
    InSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.query import (
    CountStar,
    Difference,
    HavingCount,
    Intersect,
    NaturalJoin,
    PlanNode,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    SumAttr,
    Union,
    evaluate,
)
from repro.relational.relation import Database, Relation
from repro.relational.schema import Schema

__all__ = [
    "And",
    "Between",
    "Compare",
    "CountStar",
    "Database",
    "Difference",
    "HavingCount",
    "InSet",
    "Intersect",
    "NaturalJoin",
    "Not",
    "Or",
    "PlanNode",
    "Predicate",
    "Product",
    "Project",
    "Relation",
    "Rename",
    "Scan",
    "Schema",
    "Select",
    "SumAttr",
    "TruePredicate",
    "Union",
    "evaluate",
]
