"""Unit tests for LICM select / project / rename / union / difference.

The central check everywhere: the set of instantiations of the LICM output
equals the set of per-world results of the classical operator (set
semantics) — i.e. operators commute with instantiation.
"""

import pytest

from repro.core.database import LICMModel
from repro.core.operators import (
    licm_dedup,
    licm_difference,
    licm_project,
    licm_rename,
    licm_select,
    licm_union,
    or_ext,
)
from repro.core.worlds import instantiate
from repro.errors import QueryError, SchemaError
from repro.relational.predicates import Compare, InSet
from helpers import all_valid_assignments, fig2c_model, fig4b_model


def _oracle_pairs(model, in_relation, out_relation, classical):
    """For every valid world: classical(instantiation(in)) == set(instantiation(out))."""
    for assignment in all_valid_assignments(model):
        source = instantiate(in_relation, assignment)
        expected = classical(source)
        actual = set(instantiate(out_relation, assignment))
        assert actual == expected, (assignment, expected, actual)


def test_select_filters_rows_and_keeps_constraints():
    model, trans, _ = fig2c_model()
    constraints_before = model.num_constraints
    result = licm_select(trans, Compare("ItemName", "!=", "Shampoo"))
    assert len(result) == 3
    assert model.num_constraints == constraints_before
    assert model.num_variables == 3  # no new variables


def test_select_world_equivalence():
    model, trans, _ = fig2c_model()
    result = licm_select(trans, InSet("ItemName", {"Beer", "Wine"}))
    _oracle_pairs(
        model,
        trans,
        result,
        lambda rows: {r for r in rows if r[1] in {"Beer", "Wine"}},
    )


def test_project_example7():
    """Example 7: project Figure 4(b) onto TID."""
    model, rel, (b1, b2, b3, b6, b7) = fig4b_model()
    result = licm_project(rel, ["TID"])
    by_tid = {row.values[0]: row.ext for row in result.rows}
    assert by_tid["T2"] == 1  # (T2, Wine) is certain
    assert by_tid["T3"] == b7  # single maybe-tuple: variable reused
    # T1 depends on three variables -> a fresh disjunction variable
    assert by_tid["T1"] not in (b1, b2, b3, 1)
    _oracle_pairs(model, rel, result, lambda rows: {(r[0],) for r in rows})


def test_project_world_equivalence_multiattr():
    model, trans, _ = fig2c_model()
    result = licm_project(trans, ["ItemName"])
    _oracle_pairs(model, trans, result, lambda rows: {(r[1],) for r in rows})


def test_project_certain_group_stays_certain():
    model = LICMModel()
    rel = model.relation("R", ["A", "B"])
    rel.insert(("x", 1))
    rel.insert(("x", 2), ext=model.new_var())
    result = licm_project(rel, ["A"])
    assert len(result) == 1
    assert result.rows[0].ext == 1


def test_project_invalid_attribute():
    model, trans, _ = fig2c_model()
    with pytest.raises(SchemaError):
        licm_project(trans, ["Nope"])


def test_dedup_merges_duplicate_value_rows():
    model = LICMModel()
    rel = model.relation("R", ["A"])
    a, b = model.new_vars(2)
    rel.insert(("x",), ext=a)
    rel.insert(("x",), ext=b)
    result = licm_dedup(rel)
    assert len(result) == 1
    _oracle_pairs(model, rel, result, set)


def test_or_ext_certain_short_circuit():
    model = LICMModel()
    var = model.new_var()
    assert or_ext(model, [var, 1]) == 1
    assert or_ext(model, [var, var]) == var
    with pytest.raises(QueryError):
        or_ext(model, [])


def test_rename():
    model, trans, _ = fig2c_model()
    renamed = licm_rename(trans, {"ItemName": "Item"})
    assert renamed.attributes == ("TID", "Item")
    assert len(renamed) == len(trans)
    assert renamed.rows[0].ext is trans.rows[0].ext


def test_union_world_equivalence():
    model = LICMModel()
    r1 = model.relation("R1", ["A"])
    r2 = model.relation("R2", ["A"])
    a, b = model.new_vars(2)
    r1.insert(("x",), ext=a)
    r1.insert(("z",))
    r2.insert(("x",), ext=b)
    r2.insert(("y",), ext=b)
    result = licm_union(r1, r2)
    for assignment in all_valid_assignments(model):
        expected = set(instantiate(r1, assignment)) | set(instantiate(r2, assignment))
        assert set(instantiate(result, assignment)) == expected


def test_union_schema_mismatch():
    model = LICMModel()
    r1 = model.relation("R1", ["A"])
    r2 = model.relation("R2", ["B"])
    with pytest.raises(SchemaError):
        licm_union(r1, r2)


def test_difference_world_equivalence():
    model = LICMModel()
    r1 = model.relation("R1", ["A"])
    r2 = model.relation("R2", ["A"])
    a, b, c = model.new_vars(3)
    r1.insert(("x",), ext=a)
    r1.insert(("y",))
    r1.insert(("w",), ext=c)
    r2.insert(("x",), ext=b)
    r2.insert(("y",), ext=b)
    r2.insert(("z",))
    result = licm_difference(r1, r2)
    for assignment in all_valid_assignments(model):
        expected = set(instantiate(r1, assignment)) - set(instantiate(r2, assignment))
        assert set(instantiate(result, assignment)) == expected


def test_difference_against_certain_right_side():
    model = LICMModel()
    r1 = model.relation("R1", ["A"])
    r2 = model.relation("R2", ["A"])
    var = model.new_var()
    r1.insert(("x",), ext=var)
    r2.insert(("x",))
    result = licm_difference(r1, r2)
    assert len(result) == 0
