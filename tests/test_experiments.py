"""Experiment harness tests at miniature scale."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import render_figure7, run_figure7
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        ExperimentConfig(
            num_transactions=250, num_items=64, k_values=(2,), mc_samples=5, seed=5
        )
    )


def test_config_scales_selectivity():
    config = ExperimentConfig(num_transactions=500)
    assert config.params.pa_selectivity == pytest.approx(100 / 500)
    assert "500tx" in config.label


def test_encoding_cache(context):
    first = context.encoding("km", 2)
    second = context.encoding("km", 2)
    assert first is second
    assert first.model_time >= 0
    assert first.anonymize_time >= 0


def test_figure5_rows_and_invariant(context):
    rows = run_figure5(context, schemes=("km", "bipartite"), queries=("Q1",), k_values=(2,))
    assert len(rows) == 2
    for row in rows:
        assert row.containment_holds
        assert row.exact
    text = render_figure5(rows)
    assert "Figure 5" in text
    assert "L_min" in text


def test_figure6_rows(context):
    rows = run_figure6(context, k=2, schemes=("bipartite",), queries=("Q1",))
    assert len(rows) == 1
    row = rows[0]
    assert row.licm_total >= row.solve_time
    assert row.mc_time > 0
    text = render_figure6(rows, k=2)
    assert "L-model" in text


def test_figure7_rows(context):
    rows = run_figure7(context, k=2, scheme="k-anonymity", queries=("Q2",))
    assert len(rows) == 1
    row = rows[0]
    assert row.vars_query >= row.vars_model
    assert row.vars_pruned <= row.vars_query
    assert row.cons_pruned <= row.cons_query
    text = render_figure7(rows, k=2)
    assert "pruning" in text


def test_unknown_scheme_rejected(context):
    with pytest.raises(ValueError):
        context.encoding("bogus", 2)


def test_coherence_scheme(context):
    record = context.encoding("coherence", 2)
    assert record.encoded.kind == "suppressed"
    answer = context.licm_answer("Q1", "coherence", 2)
    assert answer.lower <= answer.upper
    mc = context.mc_answer("Q1", "coherence", 2)
    assert answer.lower <= mc.minimum <= mc.maximum <= answer.upper


def test_utility_harness(context):
    from repro.experiments.utility import render_utility, run_utility

    rows = run_utility(
        context, schemes=("km", "bipartite"), queries=("Q1",), k_values=(2,)
    )
    assert len(rows) == 2
    # km is a generalization scheme -> has an LM loss figure.
    km_row = next(r for r in rows if r.scheme == "km")
    assert km_row.loss is not None
    bip_row = next(r for r in rows if r.scheme == "bipartite")
    assert bip_row.loss is None
    text = render_utility(rows)
    assert "width" in text and "km" in text
