"""Unit tests for the LICM encodings of anonymized data (the Appendix)."""

import pytest

from repro.anonymize.base import BipartiteGrouping, GeneralizedDataset, SuppressedDataset
from repro.anonymize.encode import encode_bipartite, encode_generalized, encode_suppressed
from repro.anonymize.hierarchy import Hierarchy
from repro.anonymize.safe_grouping import safe_grouping
from repro.core.worlds import enumerate_worlds
from repro.data.transactions import TransactionDataset
from helpers import all_valid_assignments


@pytest.fixture
def fig2_hierarchy():
    return Hierarchy.from_parent_map(
        {
            "Beer": "Alcohol",
            "Wine": "Alcohol",
            "Liquor": "Alcohol",
            "Diapers": "HealthCare",
            "Pregnancytest": "HealthCare",
            "Shampoo": "HealthCare",
            "Alcohol": "All",
            "HealthCare": "All",
        }
    )


@pytest.fixture
def tiny_dataset():
    return TransactionDataset(
        transactions=[
            ("T1", frozenset({"Beer", "Shampoo"})),
            ("T2", frozenset({"Wine", "Shampoo"})),
        ],
        items=("Beer", "Wine", "Liquor", "Diapers", "Pregnancytest", "Shampoo"),
        locations={"T1": 5, "T2": 17},
        prices={"Beer": 6, "Wine": 9, "Liquor": 12, "Diapers": 4, "Pregnancytest": 8, "Shampoo": 3},
    )


def test_encode_generalized_fig2c(fig2_hierarchy, tiny_dataset):
    """Figure 2(c): T1's Alcohol expands to three maybe-tuples + one >=1."""
    generalized = GeneralizedDataset(
        source=tiny_dataset,
        hierarchy=fig2_hierarchy,
        transactions=[
            ("T1", frozenset({"Alcohol", "Shampoo"})),
            ("T2", frozenset({"Wine", "Shampoo"})),
        ],
        method="manual",
    )
    encoded = encode_generalized(generalized)
    transitem = encoded.relations["TRANSITEM"]
    t1_rows = [r for r in transitem.rows if r.values[0] == "T1"]
    assert {r.values[1] for r in t1_rows} == {"Beer", "Wine", "Liquor", "Shampoo"}
    assert sum(1 for r in t1_rows if r.certain) == 1  # Shampoo
    assert sum(1 for r in t1_rows if not r.certain) == 3
    assert encoded.model.num_constraints == 1
    # The encoding's possible worlds over T1 are the 7 non-empty subsets.
    worlds = enumerate_worlds(encoded.model, transitem)
    assert len(worlds) == 7


def test_encode_generalized_size_linear(fig2_hierarchy, tiny_dataset):
    """Appendix A: O(N) tuples and O(N) total constraint size."""
    generalized = GeneralizedDataset(
        source=tiny_dataset,
        hierarchy=fig2_hierarchy,
        transactions=[
            ("T1", frozenset({"All"})),
            ("T2", frozenset({"HealthCare"})),
        ],
    )
    encoded = encode_generalized(generalized)
    transitem = encoded.relations["TRANSITEM"]
    assert len(transitem) == 6 + 3  # All -> 6 leaves, HealthCare -> 3
    assert encoded.model.num_constraints == 2
    term_count = sum(len(c.terms) for c in encoded.model.constraints)
    assert term_count == 9  # each variable appears exactly once


def test_encode_generalized_public_relations(fig2_hierarchy, tiny_dataset):
    generalized = GeneralizedDataset(
        source=tiny_dataset,
        hierarchy=fig2_hierarchy,
        transactions=[("T1", frozenset({"Beer"})), ("T2", frozenset({"Wine"}))],
    )
    encoded = encode_generalized(generalized)
    assert len(encoded.relations["TRANS"]) == 2
    assert len(encoded.relations["ITEM"]) == 6
    assert all(r.certain for r in encoded.relations["TRANS"].rows)


@pytest.fixture
def disjoint_dataset():
    """Two transactions with disjoint itemsets (safely groupable)."""
    return TransactionDataset(
        transactions=[
            ("T1", frozenset({"Beer", "Shampoo"})),
            ("T2", frozenset({"Wine", "Diapers"})),
        ],
        items=("Beer", "Wine", "Liquor", "Diapers", "Pregnancytest", "Shampoo"),
        locations={"T1": 5, "T2": 17},
        prices={"Beer": 6, "Wine": 9, "Liquor": 12, "Diapers": 4, "Pregnancytest": 8, "Shampoo": 3},
    )


def test_encode_bipartite_fig8(disjoint_dataset):
    """A 2-transaction group: 4 variables, 4 bijection constraints, and
    exactly 2 possible worlds (the two permutations)."""
    tiny_dataset = disjoint_dataset
    grouping = safe_grouping(tiny_dataset, 2)
    encoded = encode_bipartite(grouping)
    transgroup = encoded.relations["TRANSGROUP"]
    assert len(transgroup) == 4  # 2 tids x 2 candidate nodes
    assert all(not r.certain for r in transgroup.rows)
    assert encoded.model.num_constraints == 4  # 2 rows + 2 columns
    assignments = all_valid_assignments(encoded.model)
    assert len(assignments) == 2


def test_encode_bipartite_graph_is_exact(tiny_dataset):
    grouping = safe_grouping(tiny_dataset, 2)
    encoded = encode_bipartite(grouping)
    graph = encoded.relations["G"]
    assert all(r.certain for r in graph.rows)
    assert len(graph) == sum(len(s) for _, s in tiny_dataset.transactions)


def test_encode_bipartite_item_side_public_when_l1(tiny_dataset):
    grouping = safe_grouping(tiny_dataset, 2, l=1)
    encoded = encode_bipartite(grouping)
    itemgroup = encoded.relations["ITEMGROUP"]
    assert all(r.certain for r in itemgroup.rows)


def test_encode_bipartite_size(disjoint_dataset):
    """Appendix B: TRANSGROUP has k|T| tuples for full groups."""
    tiny_dataset = disjoint_dataset
    grouping = safe_grouping(tiny_dataset, 2)
    encoded = encode_bipartite(grouping)
    k = grouping.params["k"]
    assert len(encoded.relations["TRANSGROUP"]) == k * tiny_dataset.num_transactions


def test_encode_suppressed(tiny_dataset):
    published = SuppressedDataset(
        source=tiny_dataset,
        transactions=[
            ("T1", frozenset({"Shampoo"})),
            ("T2", frozenset({"Wine", "Shampoo"})),
        ],
        suppressed_items=frozenset({"Beer"}),
    )
    encoded = encode_suppressed(published)
    transitem = encoded.relations["TRANSITEM"]
    maybe = [r for r in transitem.rows if not r.certain]
    # Each transaction might contain the suppressed item.
    assert {(r.values[0], r.values[1]) for r in maybe} == {
        ("T1", "Beer"),
        ("T2", "Beer"),
    }
    assert encoded.model.num_constraints == 0  # Appendix C adds none


def test_encode_suppressed_with_revealed_counts(tiny_dataset):
    published = SuppressedDataset(
        source=tiny_dataset,
        transactions=[
            ("T1", frozenset({"Shampoo"})),
            ("T2", frozenset({"Wine", "Shampoo"})),
        ],
        suppressed_items=frozenset({"Beer"}),
        revealed_counts={"T1": 1, "T2": 0},
    )
    encoded = encode_suppressed(published)
    assert encoded.model.num_constraints == 2
    # With counts revealed there is exactly one possible world.
    assignments = all_valid_assignments(encoded.model)
    assert len(assignments) == 1
    transitem = encoded.relations["TRANSITEM"]
    from repro.core.worlds import instantiate

    world = set(instantiate(transitem, assignments[0]))
    assert ("T1", "Beer") in world
    assert ("T2", "Beer") not in world
