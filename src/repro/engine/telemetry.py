"""Structured instrumentation for the solve engine.

Every phase of the ``model -> prune -> normalize -> solve -> witness``
pipeline emits a small dataclass event to pluggable *sinks* instead of
scattering ad-hoc ``time.perf_counter()`` bookkeeping across callers.
A :class:`Telemetry` instance also keeps aggregate counters and timings,
so harnesses can read totals (cache hits, solver nodes, per-phase wall
time) without installing a sink at all.

This module is dependency-free on purpose: the solver layer below the
engine uses :class:`Stopwatch` for its own timing without creating an
import cycle.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

logger = logging.getLogger("repro.engine")


class Stopwatch:
    """A monotonic timer: created running, frozen by :meth:`stop`.

    ``elapsed`` reads the live value while running and the frozen value
    after ``stop()`` — the one timing primitive used across the repo in
    place of paired ``time.perf_counter()`` calls.
    """

    __slots__ = ("_start", "_stopped")

    def __init__(self):
        self._start = time.perf_counter()
        self._stopped: Optional[float] = None

    @property
    def elapsed(self) -> float:
        end = self._stopped if self._stopped is not None else time.perf_counter()
        return end - self._start

    def stop(self) -> float:
        """Freeze the timer and return the final elapsed seconds."""
        if self._stopped is None:
            self._stopped = time.perf_counter()
        return self.elapsed

    def restart(self) -> None:
        self._start = time.perf_counter()
        self._stopped = None


# -- events -----------------------------------------------------------------


@dataclass
class PhaseTimed:
    """One timed pipeline phase (prune, normalize, solve_min, ...)."""

    phase: str
    seconds: float
    meta: dict = field(default_factory=dict)


@dataclass
class CounterBumped:
    """An aggregate counter changed (cache_hits, solver_nodes, ...)."""

    name: str
    delta: int
    total: int


@dataclass
class CacheProbe:
    """One solve-cache lookup or maintenance action.

    ``kind`` is ``'hit'``, ``'miss'``, ``'store'``, ``'evict'`` or
    ``'invalidate'``.
    """

    kind: str
    fingerprint: str = ""
    size: int = 0


@dataclass
class ProblemPrepared:
    """Size counters for one prepared BIP, before/after pruning."""

    fingerprint: str
    variables_before: int
    constraints_before: int
    variables_after: int
    constraints_after: int


@dataclass
class SolveFinished:
    """Outcome of one optimization direction (possibly served from cache)."""

    sense: str
    status: str
    objective: Optional[int]
    nodes: int
    seconds: float
    backend: str
    fingerprint: str = ""
    cached: bool = False


TelemetryEvent = object  # any of the dataclasses above
Sink = Callable[[TelemetryEvent], None]


# -- sinks ------------------------------------------------------------------


class ListSink:
    """Collects every event in order — the test/benchmark sink.

    :param maxlen: when given, keep only the most recent ``maxlen``
        events (a ring buffer), so a long experiment run with a
        permanently installed sink cannot grow memory unboundedly.  The
        default (``None``) keeps everything, preserving historical test
        behavior.
    """

    def __init__(self, maxlen: Optional[int] = None):
        self.maxlen = maxlen
        self.events = deque(maxlen=maxlen) if maxlen is not None else []
        self.seen = 0  # total events observed, including any rotated out

    def __call__(self, event) -> None:
        self.events.append(event)
        self.seen += 1

    def of_type(self, *types) -> list:
        return [e for e in self.events if isinstance(e, types)]

    def __len__(self) -> int:
        return len(self.events)


class LoggingSink:
    """Forwards events to a standard :mod:`logging` logger."""

    def __init__(self, logger: Optional[logging.Logger] = None, level: int = logging.DEBUG):
        self.logger = logger or logging.getLogger("repro.engine")
        self.level = level

    def __call__(self, event) -> None:
        self.logger.log(self.level, "%s", event)


# -- the aggregator ---------------------------------------------------------


class Telemetry:
    """Counters + accumulated phase timings + event fan-out to sinks.

    Thread-safe: the parallel min/max solves of a session bump counters
    and emit events from worker threads.
    """

    def __init__(self, sinks: Iterable[Sink] = ()):
        self.sinks: list[Sink] = list(sinks)
        self.counters: dict[str, int] = {}
        self.timings: dict[str, float] = {}
        self._lock = threading.Lock()

    def add_sink(self, sink: Sink) -> None:
        with self._lock:
            self.sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        with self._lock:
            try:
                self.sinks.remove(sink)
            except ValueError:
                pass

    def emit(self, event) -> None:
        """Fan one event out to every sink.

        The sink list is snapshotted under the lock — ``add_sink`` from a
        harness thread must not race the solver workers' iteration — and a
        raising sink is logged and skipped: observability failures never
        abort the solve pipeline.
        """
        with self._lock:
            sinks = tuple(self.sinks)
        for sink in sinks:
            try:
                sink(event)
            except Exception:  # noqa: BLE001 - a sink must never kill a solve
                logger.exception("telemetry sink %r failed on %r", sink, event)

    def count(self, name: str, delta: int = 1) -> int:
        """Bump an aggregate counter and emit a :class:`CounterBumped`."""
        with self._lock:
            total = self.counters.get(name, 0) + delta
            self.counters[name] = total
        self.emit(CounterBumped(name, delta, total))
        return total

    @contextmanager
    def timer(self, phase: str, **meta):
        """Time a pipeline phase; yields the running :class:`Stopwatch`."""
        sw = Stopwatch()
        try:
            yield sw
        finally:
            seconds = sw.stop()
            with self._lock:
                self.timings[phase] = self.timings.get(phase, 0.0) + seconds
            self.emit(PhaseTimed(phase, seconds, dict(meta)))

    def record(self, phase: str, seconds: float, **meta) -> None:
        """Credit already-measured wall time to a phase.

        The non-contextual sibling of :meth:`timer`, for work measured
        elsewhere — a solve executed in a forked worker reports its wall
        seconds home inside the result, and the parent records them here.
        """
        with self._lock:
            self.timings[phase] = self.timings.get(phase, 0.0) + seconds
        self.emit(PhaseTimed(phase, seconds, dict(meta)))

    def total(self, phase: str) -> float:
        """Accumulated seconds recorded for a phase (0.0 if never timed)."""
        return self.timings.get(phase, 0.0)

    def snapshot(self) -> dict:
        """A plain-dict view of counters and timings (for reports/tests)."""
        with self._lock:
            return {"counters": dict(self.counters), "timings": dict(self.timings)}
