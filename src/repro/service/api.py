"""Typed request/response contracts for the aggregate-query service.

A request names a workload query (``Q1``/``Q2``/``Q3``) *or* an ad-hoc
aggregate over the uncertain TRANSITEM view, the encoding to run it
against (``scheme``, ``k``), an optional deadline, and an optional
``precision`` — ``fast`` (estimator tiers only), ``balanced`` (estimators
with escalation of disagreeing components) or ``tight`` (exact BIP; see
docs/estimators.md).  A response always carries a terminal ``status``:

* ``ok``       — bounds within the deadline at the requested precision:
  exact LICM bounds for ``tight``, a provably containing estimator
  interval otherwise (``tier`` and the ``*_components`` fields say which);
* ``degraded`` — the BIP solve exceeded its budget; the bounds are the
  Monte Carlo observed range (contained in the exact range, never wider);
* ``timeout``  — the deadline passed with no usable answer at all;
* ``rejected`` — admission control refused the request (queue full);
* ``error``    — the request was invalid or execution failed.

Everything (de)serializes to flat JSON dicts — the wire format of
``POST /v1/query`` — and validation happens in :meth:`QueryRequest.from_dict`
so the HTTP layer can map :class:`~repro.errors.ValidationError` straight
to a 400.
"""

from __future__ import annotations

import dataclasses
import json
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ValidationError

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_TIMEOUT = "timeout"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"
STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_TIMEOUT, STATUS_REJECTED, STATUS_ERROR)

#: canned workload plans (the paper's evaluation queries)
QUERIES = ("Q1", "Q2", "Q3")
#: ad-hoc aggregates over the uncertain TRANSITEM view
AGGREGATES = ("count", "sum", "min", "max")
#: anonymization schemes the service can hold encodings for
SCHEMES = ("km", "k-anonymity", "bipartite", "coherence")
#: answering precision levels (``None`` on a request = the server default)
PRECISIONS = ("fast", "balanced", "tight")

#: HTTP status the front-end answers with, per terminal request status
_HTTP_STATUS = {
    STATUS_OK: 200,
    STATUS_DEGRADED: 200,
    STATUS_TIMEOUT: 504,
    STATUS_REJECTED: 429,
    STATUS_ERROR: 400,
}


def http_status_for(status: str) -> int:
    """The HTTP code ``POST /v1/query`` responds with for ``status``."""
    return _HTTP_STATUS.get(status, 500)


def _new_request_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class QueryRequest:
    """One aggregate-bound question, as posted to ``/v1/query``.

    Exactly one of ``query`` (a canned workload plan) or ``aggregate``
    (an ad-hoc aggregate over TRANSITEM; ``sum``/``min``/``max`` apply to
    ITEM.Price) must be set.  ``params`` optionally overrides
    :class:`~repro.queries.workload.QueryParams` fields for canned plans.
    ``precision`` picks the answering tier policy (``fast``, ``balanced``
    or ``tight``); ``None`` defers to the server's configured default.
    """

    scheme: str = "km"
    k: int = 2
    query: Optional[str] = None
    aggregate: Optional[str] = None
    precision: Optional[str] = None
    deadline_ms: Optional[float] = None
    mc_fallback: bool = True
    mc_samples: int = 8
    params: dict = field(default_factory=dict)
    #: attach a structured :mod:`~repro.obs.explain` payload to the
    #: response.  Excluded from :meth:`dedup_key` and never cached —
    #: explanations describe this execution, not the answer.
    explain: bool = False
    request_id: str = field(default_factory=_new_request_id)

    @property
    def kind(self) -> str:
        """``'query'`` (canned plan) or ``'aggregate'`` (ad-hoc)."""
        return "query" if self.query is not None else "aggregate"

    # -- validation --------------------------------------------------------
    def validate(self) -> "QueryRequest":
        """Raise :class:`~repro.errors.ValidationError` listing every problem."""
        problems = []
        if (self.query is None) == (self.aggregate is None):
            problems.append("exactly one of 'query' or 'aggregate' must be set")
        if self.query is not None and self.query not in QUERIES:
            problems.append(f"query must be one of {QUERIES}, got {self.query!r}")
        if self.aggregate is not None and self.aggregate not in AGGREGATES:
            problems.append(
                f"aggregate must be one of {AGGREGATES}, got {self.aggregate!r}"
            )
        if self.scheme not in SCHEMES:
            problems.append(f"scheme must be one of {SCHEMES}, got {self.scheme!r}")
        if self.precision is not None and self.precision not in PRECISIONS:
            problems.append(
                f"precision must be one of {PRECISIONS}, got {self.precision!r}"
            )
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            problems.append(f"k must be a positive integer, got {self.k!r}")
        if self.deadline_ms is not None:
            if not isinstance(self.deadline_ms, (int, float)) or isinstance(
                self.deadline_ms, bool
            ):
                problems.append(f"deadline_ms must be a number, got {self.deadline_ms!r}")
            elif self.deadline_ms <= 0:
                problems.append(f"deadline_ms must be > 0, got {self.deadline_ms!r}")
        if (
            not isinstance(self.mc_samples, int)
            or isinstance(self.mc_samples, bool)
            or not 1 <= self.mc_samples <= 1000
        ):
            problems.append(f"mc_samples must be in [1, 1000], got {self.mc_samples!r}")
        if not isinstance(self.params, dict):
            problems.append(f"params must be an object, got {type(self.params).__name__}")
        else:
            from repro.queries.workload import QueryParams

            known = {f.name for f in dataclasses.fields(QueryParams)}
            for key in sorted(set(self.params) - known):
                problems.append(f"unknown params key {key!r}")
        if not isinstance(self.explain, bool):
            problems.append(f"explain must be a boolean, got {self.explain!r}")
        if not isinstance(self.request_id, str) or not self.request_id:
            problems.append("request_id must be a non-empty string")
        if problems:
            raise ValidationError(problems)
        return self

    # -- wire format -------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRequest":
        """Build and validate a request from a decoded JSON object."""
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError([f"unknown field {name!r}" for name in unknown])
        return cls(**payload).validate()

    @classmethod
    def from_json(cls, body: str) -> "QueryRequest":
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        if not out.get("explain"):
            out.pop("explain", None)  # keep the wire format stable when off
        return {key: value for key, value in out.items() if value is not None}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def dedup_key(self) -> tuple:
        """Coarse request-level identity (the fine key is the BIP fingerprint).

        ``explain`` is deliberately excluded: an explain request must
        coalesce with (and reuse the cache entries of) its plain twin —
        explanations never perturb answers or cache state.
        """
        return (
            self.kind,
            self.query or self.aggregate,
            self.scheme,
            self.k,
            self.precision,
            tuple(sorted(self.params.items())),
        )


@dataclass
class QueryResponse:
    """The terminal answer for one request (wire format of ``/v1/query``)."""

    request_id: str
    status: str
    lower: Optional[float] = None
    upper: Optional[float] = None
    exact: bool = False
    error: Optional[str] = None
    fingerprint: Optional[str] = None
    #: coalesced onto another in-flight identical solve.  A deduped
    #: follower is *parked* (no worker slot held) until the leader's
    #: bounds publish; its ``queue_ms`` covers that parked wait and its
    #: ``solve_ms`` is 0 when the leader's answer was reused verbatim.
    dedup: bool = False
    cache_hits: int = 0
    l2_hits: int = 0
    components: int = 0
    backend: Optional[str] = None
    nodes: int = 0
    mc_samples: int = 0  # > 0 only for degraded (MC fallback) answers
    #: answering-tier provenance: the deepest tier that contributed
    #: (``structural``/``entropy``/``lp``/``exact``/``mc``), how many
    #: decomposed components were answered exactly vs. by estimators, how
    #: many escalated past the estimator tiers, and the worst
    #: per-component tier disagreement at decision time (0.0 when exact).
    tier: Optional[str] = None
    exact_components: int = 0
    estimated_components: int = 0
    escalations: int = 0
    gap: Optional[float] = None
    queue_ms: float = 0.0
    solve_ms: float = 0.0
    total_ms: float = 0.0
    trace_id: Optional[str] = None
    #: structured EXPLAIN payload (:class:`repro.obs.explain.SolveExplanation`
    #: as a dict) — present only when the request set ``explain=true``.
    explain: Optional[dict] = None

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}, got {self.status!r}")

    @property
    def http_status(self) -> int:
        return http_status_for(self.status)

    @property
    def terminal(self) -> bool:
        """Every response status is terminal — the no-hang invariant."""
        return self.status in STATUSES

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResponse":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})

    @classmethod
    def from_json(cls, body: str) -> "QueryResponse":
        return cls.from_dict(json.loads(body))

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        return {key: value for key, value in out.items() if value is not None}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)
