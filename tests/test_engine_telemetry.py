"""Unit tests for the engine's building blocks: telemetry, canonicalizer,
LRU solve cache, and the constraint store's generation counter."""

from __future__ import annotations

import logging
import threading

from repro.core.constraints import ConstraintStore
from repro.core.database import LICMModel
from repro.core.linexpr import linear_sum
from repro.engine.cache import CachedSolve, SolveCache
from repro.engine.canonical import canonicalize
from repro.engine.telemetry import (
    CounterBumped,
    ListSink,
    LoggingSink,
    PhaseTimed,
    Stopwatch,
    Telemetry,
)


# -- Stopwatch / Telemetry ---------------------------------------------------


def test_stopwatch_freezes_on_stop():
    sw = Stopwatch()
    first = sw.stop()
    assert first >= 0.0
    assert sw.elapsed == first  # frozen
    sw.restart()
    assert sw.elapsed >= 0.0


def test_timer_accumulates_and_emits():
    sink = ListSink()
    telemetry = Telemetry([sink])
    with telemetry.timer("phase_a", detail=1):
        pass
    with telemetry.timer("phase_a"):
        pass
    events = sink.of_type(PhaseTimed)
    assert [e.phase for e in events] == ["phase_a", "phase_a"]
    assert events[0].meta == {"detail": 1}
    assert telemetry.total("phase_a") >= sum(e.seconds for e in events) * 0.99
    assert telemetry.total("missing") == 0.0


def test_counters_and_snapshot():
    sink = ListSink()
    telemetry = Telemetry([sink])
    assert telemetry.count("cache_hits") == 1
    assert telemetry.count("cache_hits", 2) == 3
    bumps = sink.of_type(CounterBumped)
    assert [(b.delta, b.total) for b in bumps] == [(1, 1), (2, 3)]
    snap = telemetry.snapshot()
    assert snap["counters"] == {"cache_hits": 3}


def test_counters_thread_safe():
    telemetry = Telemetry()
    threads = [
        threading.Thread(target=lambda: [telemetry.count("n") for _ in range(500)])
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert telemetry.counters["n"] == 2000


def test_logging_sink(caplog):
    telemetry = Telemetry([LoggingSink(level=logging.INFO)])
    with caplog.at_level(logging.INFO, logger="repro.engine"):
        telemetry.count("x")
    assert "CounterBumped" in caplog.text


def test_emit_does_not_race_add_sink():
    """emit snapshots the sink list under the lock, so concurrent
    add_sink calls can't blow up the iteration mid-emit."""
    telemetry = Telemetry()
    stop = threading.Event()
    errors = []

    def emitter():
        try:
            while not stop.is_set():
                telemetry.count("n")
        except Exception as exc:  # pragma: no cover - the bug under test
            errors.append(exc)

    worker = threading.Thread(target=emitter)
    worker.start()
    sinks = [ListSink() for _ in range(200)]
    for sink in sinks:
        telemetry.add_sink(sink)
    stop.set()
    worker.join()
    assert not errors
    # late sinks only see events emitted after their registration
    assert len(sinks[0].events) >= len(sinks[-1].events)


def test_failing_sink_logs_and_continues(caplog):
    def bad_sink(event):
        raise RuntimeError("sink exploded")

    good = ListSink()
    telemetry = Telemetry([bad_sink, good])
    with caplog.at_level(logging.ERROR, logger="repro.engine"):
        telemetry.count("survives")
    assert telemetry.counters["survives"] == 1
    assert len(good.events) == 1  # later sinks still reached
    assert "sink" in caplog.text


def test_remove_sink_is_idempotent():
    sink = ListSink()
    telemetry = Telemetry([sink])
    telemetry.remove_sink(sink)
    telemetry.remove_sink(sink)  # absent: no error
    telemetry.count("n")
    assert sink.events == [] if isinstance(sink.events, list) else not sink.events


def test_list_sink_ring_buffer():
    sink = ListSink(maxlen=3)
    telemetry = Telemetry([sink])
    for _ in range(10):
        telemetry.count("n")
    assert len(sink) == 3
    assert sink.seen == 10
    assert [e.total for e in sink.of_type(CounterBumped)] == [8, 9, 10]


def test_list_sink_default_keeps_everything():
    sink = ListSink()
    for index in range(5):
        sink(index)
    assert isinstance(sink.events, list)
    assert sink.events == [0, 1, 2, 3, 4]
    assert sink.seen == len(sink) == 5


# -- canonicalizer -----------------------------------------------------------


def _constraints_of(model):
    return list(model.constraints)


def test_fingerprint_stable_under_index_shift():
    """Structurally identical problems over shifted variable indices
    canonicalize to the same fingerprint."""

    def build(offset: int):
        model = LICMModel()
        model.new_vars(offset)  # burn indices
        a, b, c = model.new_vars(3)
        model.add(linear_sum([a, b, c]) >= 1)
        model.add((a + b) <= 1)
        return canonicalize(a + b + c, _constraints_of(model))

    assert build(0).fingerprint == build(7).fingerprint


def test_fingerprint_ignores_constraint_order():
    model = LICMModel()
    a, b = model.new_vars(2)
    c1, c2 = (a + b) >= 1, (a + 0) <= 1
    fp_ab = canonicalize(a + b, [c1, c2]).fingerprint
    fp_ba = canonicalize(a + b, [c2, c1]).fingerprint
    assert fp_ab == fp_ba


def test_fingerprint_distinguishes_different_problems():
    model = LICMModel()
    a, b = model.new_vars(2)
    base = canonicalize(a + b, [(a + b) >= 1])
    assert base.fingerprint != canonicalize(a + b, [(a + b) >= 2]).fingerprint
    assert base.fingerprint != canonicalize(a - b, [(a + b) >= 1]).fingerprint
    assert base.fingerprint != canonicalize(a + b, [(a + b) <= 1]).fingerprint


def test_witness_translation_roundtrip():
    model = LICMModel()
    model.new_vars(4)
    a, b = model.new_vars(2)
    canonical = canonicalize(a + b, [(a + b) >= 1])
    assert canonical.num_vars == 2
    witness = canonical.witness((1, 0))
    assert witness == {a.index: 1, b.index: 0}


# -- solve cache -------------------------------------------------------------


def _entry(value: int) -> CachedSolve:
    return CachedSolve("optimal", value, (1,), float(value), 0, "bb")


def test_cache_lru_discipline():
    cache = SolveCache(maxsize=2)
    cache.put("a", _entry(1))
    cache.put("b", _entry(2))
    assert cache.get("a").objective == 1  # refresh 'a'
    cache.put("c", _entry(3))  # evicts 'b'
    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats["evictions"] == 1


def test_cache_clear_counts_invalidations():
    cache = SolveCache()
    cache.clear()  # empty clear is not an invalidation
    assert cache.stats["invalidations"] == 0
    cache.put("a", _entry(1))
    cache.clear()
    assert cache.stats["invalidations"] == 1
    assert len(cache) == 0


def test_cache_size_zero_disables():
    cache = SolveCache(maxsize=0)
    cache.put("a", _entry(1))
    assert cache.get("a") is None
    assert cache.stats == {
        "size": 0,
        "maxsize": 0,
        "hits": 0,
        "misses": 1,
        "evictions": 0,
        "invalidations": 0,
    }


# -- constraint store generation --------------------------------------------


def test_store_generation_counts_mutations():
    model = LICMModel()
    a, b = model.new_vars(2)
    store: ConstraintStore = model.constraints
    assert store.generation == 0
    model.add((a + b) >= 1)
    assert store.generation == 1
    model.add_all([(a + 0) <= 1, (b + 0) <= 1])
    assert store.generation == 3
    assert store.copy().generation == 3
