"""Integer linear expressions over binary variables.

A :class:`LinearExpr` is an immutable map ``{var_index: coefficient}`` plus
an integer constant.  Expressions are what the paper writes on the left-hand
side of its constraints (``b1 + b2 + b3``) and as aggregate objectives
(``sum of Ext values``, ``sum of price * Ext``).
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.core.variables import BoolVar
from repro.errors import ConstraintError

Operand = Union["LinearExpr", BoolVar, int]


class LinearExpr:
    """An immutable integer-coefficient linear expression.

    Instances are created by arithmetic on :class:`BoolVar` objects or via
    :func:`linear_sum`; they should not normally be constructed directly.
    """

    __slots__ = ("coeffs", "constant", "pool_id")

    def __init__(self, coeffs: Mapping[int, int], constant: int = 0, pool_id: int | None = None):
        self.coeffs = {i: c for i, c in coeffs.items() if c != 0}
        self.constant = constant
        self.pool_id = pool_id

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _coerce(value: Operand) -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, BoolVar):
            return LinearExpr({value.index: 1}, 0, pool_id=value.pool_id)
        if isinstance(value, (int,)):
            return LinearExpr({}, int(value))
        raise ConstraintError(f"cannot use {value!r} in a linear expression")

    def _merge_pool(self, other: "LinearExpr") -> int | None:
        if self.pool_id is None:
            return other.pool_id
        if other.pool_id is None or other.pool_id == self.pool_id:
            return self.pool_id
        raise ConstraintError("cannot mix variables from different models in one expression")

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: Operand) -> "LinearExpr":
        other = self._coerce(other)
        coeffs = dict(self.coeffs)
        for i, c in other.coeffs.items():
            coeffs[i] = coeffs.get(i, 0) + c
        return LinearExpr(coeffs, self.constant + other.constant, self._merge_pool(other))

    __radd__ = __add__

    def __sub__(self, other: Operand) -> "LinearExpr":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other: Operand) -> "LinearExpr":
        return self._coerce(other) + (self * -1)

    def __mul__(self, scalar: int) -> "LinearExpr":
        if not isinstance(scalar, int):
            raise ConstraintError("LICM expressions only support integer coefficients")
        return LinearExpr(
            {i: c * scalar for i, c in self.coeffs.items()},
            self.constant * scalar,
            self.pool_id,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self * -1

    # -- evaluation --------------------------------------------------------
    def value(self, assignment: Mapping[int, int]) -> int:
        """Evaluate the expression under an assignment of variable indices."""
        return self.constant + sum(c * assignment[i] for i, c in self.coeffs.items())

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other: Operand):
        from repro.core.constraints import LinearConstraint

        return LinearConstraint.from_exprs(self, "<=", self._coerce(other))

    def __ge__(self, other: Operand):
        from repro.core.constraints import LinearConstraint

        return LinearConstraint.from_exprs(self, ">=", self._coerce(other))

    def eq(self, other: Operand):
        """Build an equality constraint ``self == other``."""
        from repro.core.constraints import LinearConstraint

        return LinearConstraint.from_exprs(self, "==", self._coerce(other))

    def __repr__(self) -> str:
        parts = []
        for i in sorted(self.coeffs):
            c = self.coeffs[i]
            parts.append(f"{'+' if c >= 0 else '-'} {abs(c)}*b[{i}]")
        if self.constant or not parts:
            parts.append(f"{'+' if self.constant >= 0 else '-'} {abs(self.constant)}")
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else text


def linear_sum(operands) -> LinearExpr:
    """Sum a sequence of variables / expressions / ints into one expression.

    Accepts the mixed ``Ext`` column of an LICM relation directly, which is
    how aggregate objectives are formed (certain tuples contribute their
    constant 1, maybe-tuples contribute their variable).
    """
    total = LinearExpr({}, 0)
    for op in operands:
        total = total + op
    return total
