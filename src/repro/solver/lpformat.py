"""CPLEX LP file format writer and reader.

The paper encodes its constraints "in the LP file format" before invoking
CPLEX; this module provides the same interchange surface so problems built
by LICM can be inspected, archived, or fed to an external solver, and the
parser makes the representation round-trippable in tests.

Only the subset needed for pure-binary programs is supported: an objective
section, ``Subject To``, an optional ``Bounds`` section (ignored — binaries
are bounded by definition), ``Binary``/``Binaries`` declarations and ``End``.
"""

from __future__ import annotations

import re

from repro.errors import SolverError
from repro.solver.model import BIPConstraint, BIPProblem

_NAME = r"[A-Za-z_][A-Za-z0-9_\[\]\.]*"


def _format_terms(terms, names) -> str:
    parts = []
    for coef, idx in terms:
        sign = "+" if coef >= 0 else "-"
        magnitude = abs(coef)
        coef_text = "" if magnitude == 1 else f"{magnitude} "
        parts.append(f"{sign} {coef_text}{names[idx]}")
    if not parts:
        return "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def write_lp(problem: BIPProblem, sense: str = "max") -> str:
    """Serialize a BIP to LP format with the given optimization sense."""
    if sense not in ("max", "min"):
        raise SolverError(f"sense must be 'max' or 'min', got {sense!r}")
    names = [_sanitize(n) for n in problem.names]
    lines = ["Maximize" if sense == "max" else "Minimize"]
    objective_terms = sorted(problem.objective.items())
    lines.append(
        " obj: "
        + _format_terms([(c, i) for i, c in objective_terms], names)
        + (
            f" + {problem.objective_constant}"
            if problem.objective_constant > 0
            else f" - {-problem.objective_constant}"
            if problem.objective_constant < 0
            else ""
        )
    )
    lines.append("Subject To")
    for k, constraint in enumerate(problem.constraints):
        op = "=" if constraint.op == "==" else constraint.op
        lines.append(
            f" c{k}: {_format_terms(constraint.terms, names)} {op} {constraint.rhs}"
        )
    lines.append("Binary")
    for name in names:
        lines.append(f" {name}")
    lines.append("End")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_\[\]\.]", "_", name)
    if not re.match(r"^[A-Za-z_]", cleaned):
        cleaned = "v_" + cleaned
    return cleaned


_TERM_RE = re.compile(rf"([+-])?\s*(\d+)?\s*({_NAME})")
_REL_RE = re.compile(r"(<=|>=|=)\s*([+-]?\d+)\s*$")


def _parse_terms(text: str, index_of: dict[str, int], grow: bool):
    terms = []
    constant = 0
    pos = 0
    text = text.strip()
    while pos < len(text):
        chunk = text[pos:].lstrip()
        offset = len(text) - len(chunk)
        match = _TERM_RE.match(chunk)
        if match:
            sign, coef_text, name = match.groups()
            coef = int(coef_text) if coef_text else 1
            if sign == "-":
                coef = -coef
            if name not in index_of:
                if not grow:
                    raise SolverError(f"unknown variable {name!r} in LP text")
                index_of[name] = len(index_of)
            terms.append((coef, index_of[name]))
            pos = offset + match.end()
            continue
        const_match = re.match(r"([+-]?)\s*(\d+)", chunk)
        if const_match:
            sign, value = const_match.groups()
            constant += int(value) * (-1 if sign == "-" else 1)
            pos = offset + const_match.end()
            continue
        raise SolverError(f"cannot parse LP terms near {chunk[:30]!r}")
    return terms, constant


def read_lp(text: str) -> tuple[BIPProblem, str]:
    """Parse LP text back into a :class:`BIPProblem` and its sense."""
    lines = [line.split("\\")[0].strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    section = None
    sense = "max"
    objective_text = ""
    constraint_texts: list[str] = []
    binaries: list[str] = []
    for line in lines:
        lowered = line.lower()
        if lowered in ("maximize", "maximise", "max"):
            section, sense = "objective", "max"
            continue
        if lowered in ("minimize", "minimise", "min"):
            section, sense = "objective", "min"
            continue
        if lowered in ("subject to", "st", "s.t.", "such that"):
            section = "constraints"
            continue
        if lowered in ("binary", "binaries", "bin"):
            section = "binary"
            continue
        if lowered in ("bounds", "general", "generals"):
            section = "skip"
            continue
        if lowered == "end":
            break
        if section == "objective":
            objective_text += " " + line
        elif section == "constraints":
            constraint_texts.append(line)
        elif section == "binary":
            binaries.extend(line.split())

    index_of: dict[str, int] = {name: i for i, name in enumerate(binaries)}
    grow = not binaries

    objective_text = re.sub(rf"^\s*{_NAME}\s*:", "", objective_text).strip()
    objective_terms, objective_constant = _parse_terms(objective_text, index_of, grow)

    constraints = []
    for text_line in constraint_texts:
        body = re.sub(rf"^\s*{_NAME}\s*:", "", text_line).strip()
        rel = _REL_RE.search(body)
        if not rel:
            raise SolverError(f"constraint without relation: {text_line!r}")
        op, rhs = rel.groups()
        op = "==" if op == "=" else op
        terms, constant = _parse_terms(body[: rel.start()], index_of, grow)
        constraints.append(BIPConstraint(tuple(terms), op, int(rhs) - constant))

    names = [None] * len(index_of)
    for name, idx in index_of.items():
        names[idx] = name
    problem = BIPProblem(
        num_vars=len(index_of),
        constraints=constraints,
        objective={idx: coef for coef, idx in objective_terms},
        objective_constant=objective_constant,
        names=list(names),
    )
    return problem, sense
