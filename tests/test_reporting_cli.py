"""Reporting helpers and the experiments CLI."""

import os
import subprocess
import sys

from repro.experiments.reporting import format_table, section


def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1), ("longer", 2.5)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "2.500" in lines[3]  # floats fixed to 3 decimals


def test_format_table_empty_rows():
    text = format_table(["a"], [])
    assert text.splitlines()[0] == "a"


def test_section_renders_bar():
    text = section("Title")
    assert "Title" in text
    assert "=====" in text


def test_cli_usage_message():
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "bogus-target"],
        capture_output=True,
        text=True,
        env={**os.environ, "REPRO_SCALE": "0.1"},
    )
    assert result.returncode == 2
    # argparse reports invalid choices on stderr
    assert "figure5" in result.stderr


def test_config_env_scaling(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(num_transactions=2000)
    assert config.num_transactions == 1000
