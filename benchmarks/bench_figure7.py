"""Figure 7 benchmark: pruning cost and effectiveness.

Times the pruning pass itself on the post-query constraint store of
Query 2 and Query 3 over k-anonymized data, and records the paper's
variables/constraints before/after counters in ``extra_info``.  Run with::

    pytest benchmarks/bench_figure7.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.linexpr import LinearExpr
from repro.core.pruning import prune
from repro.queries.licm_eval import evaluate_licm

K = 4
SCHEME = "k-anonymity"


@pytest.fixture(scope="module")
def queried_models(context):
    """(model, objective, modeling-stage stats) per query, built once."""
    out = {}
    for query in ("Q2", "Q3"):
        context._encodings.pop((SCHEME, K), None)
        record = context.encoding(SCHEME, K)
        model = record.encoded.model
        at_model = (model.num_variables, model.num_constraints)
        plan = context.plan(query, record.encoded)
        objective = evaluate_licm(plan, record.encoded.relations)
        assert isinstance(objective, LinearExpr)
        out[query] = (model, objective, at_model)
    context._encodings.pop((SCHEME, K), None)
    return out


@pytest.mark.parametrize("query", ("Q2", "Q3"))
@pytest.mark.parametrize("method", ("lineage", "fixpoint", "single_pass"))
def test_pruning_pass(benchmark, queried_models, query, method):
    model, objective, at_model = queried_models[query]
    result = benchmark(
        prune, model.constraints, set(objective.coeffs), method, model=model
    )
    benchmark.extra_info["vars_at_modeling"] = at_model[0]
    benchmark.extra_info["cons_at_modeling"] = at_model[1]
    benchmark.extra_info["cons_after_query"] = result.original_constraints
    benchmark.extra_info["cons_after_prune"] = len(result.constraints)
    assert len(result.constraints) <= result.original_constraints
